//! # scs-service — concurrent query serving for significant (α,β)-community search
//!
//! The paper (Wang et al., ICDE 2021) splits community search into an
//! offline index build and an online two-step query precisely so queries
//! can be answered at interactive speed. This crate supplies the serving
//! layer that premise implies: an in-process, std-only query engine that
//! owns a shared [`scs::CommunitySearch`] and answers
//! [`QueryRequest`]s through a fixed pool of worker threads.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──submit──▶ mpsc job queue ──▶ worker 0..N
//!                                           │
//!                         ┌─────────────────┼──────────────────┐
//!                         ▼                 ▼                  ▼
//!                  sharded LRU cache   in-flight table   Arc<CommunitySearch>
//!                  (hit → respond)     (dedup identical  (read-locked slot,
//!                                       concurrent work)  epoch-swappable)
//! ```
//!
//! * [`engine::QueryEngine`] — the worker pool. [`engine::QueryEngine::submit`]
//!   enqueues and returns a handle; [`engine::QueryEngine::query`] blocks.
//! * batch submission — [`engine::QueryEngine::submit_batch`] carries N
//!   requests through the queue as one job: one index-snapshot read, one
//!   cache lookup per unique key, one worker workspace and one batched
//!   kernel call per algorithm for the whole batch
//!   ([`scs::CommunitySearch::significant_communities_in`]), answered in
//!   submission order with results identical to per-request submission.
//! * adaptive batch splitting — when the pool has idle workers, a large
//!   batch's leader computations are carved into per-worker sub-batches
//!   (at most one per [`engine::ServiceConfig::min_sub_batch`] leaders)
//!   and fanned out through the queue, so one big submitter saturates
//!   the pool; results and [`stats::ServiceStats`] counters are
//!   bit-identical to the unsplit path, and `--no-split` /
//!   [`engine::ServiceConfig::split_batches`] turns it off for A/B runs.
//! * [`cache::ShardedCache`] — a power-of-two-sharded, per-shard-locked
//!   LRU keyed by `(q, α, β, algorithm)` with hit/miss counters.
//! * in-flight deduplication — when identical queries race, one worker
//!   computes and the rest wait on the same result (`singleflight`).
//! * [`stats::ServiceStats`] — QPS, p50/p90/p99 latency from a lock-free
//!   log-bucketed histogram, cache hit rate, coalescing counters, plus
//!   scratch residency and allocations-avoided from the workers'
//!   workspaces.
//! * per-worker scratch reuse — every worker owns a
//!   [`scs::QueryWorkspace`] reused across queries (and across epoch
//!   swaps, growing if a larger graph is installed), so the steady-state
//!   compute path performs no graph-sized allocations.
//! * epoch swap — [`engine::QueryEngine::install`] atomically replaces
//!   the index (e.g. a [`scs::DynamicIndex::snapshot`] after edge
//!   updates) without stopping the workers; the cache is invalidated and
//!   every response is tagged with the epoch that produced it.
//! * [`replay`] — workload construction (reusing `datasets::workload`)
//!   and a multi-client replay harness, the backing of the
//!   `scs serve-bench` subcommand and the scaling benchmark.
//!
//! ## Example
//!
//! ```
//! use bigraph::GraphBuilder;
//! use scs::{Algorithm, CommunitySearch};
//! use scs_service::{QueryEngine, QueryRequest, ServiceConfig};
//!
//! let mut b = GraphBuilder::new();
//! for u in 0..3 {
//!     for l in 0..3 {
//!         b.add_edge(u, l, if u == 2 && l == 2 { 1.0 } else { 5.0 });
//!     }
//! }
//! let search = CommunitySearch::shared(b.build().unwrap());
//! let q = search.graph().upper(0);
//!
//! let engine = QueryEngine::start(search, ServiceConfig::default());
//! let resp = engine.query(QueryRequest::new(q, 2, 2, Algorithm::Auto));
//! assert_eq!(resp.summary.min_weight, Some(5.0));
//! let again = engine.query(QueryRequest::new(q, 2, 2, Algorithm::Auto));
//! assert!(again.cached);
//! engine.shutdown();
//! ```

pub mod cache;
pub mod engine;
pub mod replay;
pub mod stats;

pub use cache::{CacheStats, ShardedCache};
pub use engine::{BatchHandle, QueryEngine, ResponseHandle, ServiceConfig};
pub use replay::{
    build_workload, replay, replay_batched, try_build_workload, ReplayReport, WorkloadError,
    WorkloadSpec,
};
pub use stats::ServiceStats;

use bigraph::{EdgeId, Subgraph, Vertex};
use scs::Algorithm;

/// One community-search query, as accepted by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryRequest {
    /// Query vertex (global id space, either side).
    pub q: Vertex,
    /// Minimum degree for upper vertices.
    pub alpha: u32,
    /// Minimum degree for lower vertices.
    pub beta: u32,
    /// Second-step algorithm.
    pub algo: Algorithm,
}

impl QueryRequest {
    /// Convenience constructor from the usual `usize` parameters.
    ///
    /// # Panics
    /// Panics if `alpha` or `beta` exceeds `u32::MAX` — silently
    /// truncating would serve a different (and likely nonempty) query
    /// than the caller asked for. No real degree constraint comes close.
    pub fn new(q: Vertex, alpha: usize, beta: usize, algo: Algorithm) -> Self {
        QueryRequest {
            q,
            alpha: u32::try_from(alpha).expect("alpha exceeds u32::MAX"),
            beta: u32::try_from(beta).expect("beta exceeds u32::MAX"),
            algo,
        }
    }
}

/// An owned, thread-independent description of a query result — the
/// significant (α,β)-community detached from the graph's lifetime so it
/// can be cached and shipped across threads.
///
/// Two summaries are equal iff the underlying communities are identical
/// (same edge set of the same graph), which is what the oracle test
/// asserts against direct [`scs::CommunitySearch::significant_community`]
/// calls.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunitySummary {
    /// The community's edge ids, sorted (empty result ⇒ empty vec).
    pub edges: Vec<EdgeId>,
    /// Upper-side member count.
    pub n_upper: usize,
    /// Lower-side member count.
    pub n_lower: usize,
    /// `f(R)` — the maximised minimum edge weight; `None` for an empty
    /// result.
    pub min_weight: Option<f64>,
}

impl CommunitySummary {
    /// Captures a borrowed [`Subgraph`] into an owned summary.
    pub fn from_subgraph(sub: &Subgraph<'_>) -> Self {
        let (us, ls) = sub.layer_vertices();
        CommunitySummary {
            edges: sub.edges().to_vec(),
            n_upper: us.len(),
            n_lower: ls.len(),
            min_weight: sub.min_weight(),
        }
    }

    /// The empty community — what the engine answers for requests no
    /// community can satisfy (query vertex outside the installed graph,
    /// or a zero degree constraint).
    pub fn empty() -> Self {
        CommunitySummary {
            edges: Vec::new(),
            n_upper: 0,
            n_lower: 0,
            min_weight: None,
        }
    }

    /// Number of edges in the community.
    pub fn size(&self) -> usize {
        self.edges.len()
    }
}

/// What the engine hands back for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The request this answers.
    pub request: QueryRequest,
    /// The community. Behind an `Arc` so cache hits and coalesced
    /// responses share one summary instead of deep-copying the edge
    /// list on the very path the cache exists to make cheap.
    pub summary: std::sync::Arc<CommunitySummary>,
    /// `true` if served from the result cache (no recomputation).
    pub cached: bool,
    /// `true` if this thread waited on another in-flight identical query
    /// instead of computing (always `false` when `cached`).
    pub coalesced: bool,
    /// Index epoch that produced the summary (bumped by
    /// [`engine::QueryEngine::install`]).
    pub epoch: u64,
    /// End-to-end service time for this request, microseconds, measured
    /// from dequeue to response (compute or cache lookup, not queueing).
    pub service_us: u64,
}
