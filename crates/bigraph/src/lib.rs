//! # bigraph — weighted bipartite graph substrate
//!
//! This crate provides the graph infrastructure that the significant
//! (α,β)-community search library ([`scs`](https://docs.rs/scs)) is built
//! on: a compact CSR representation of undirected, edge-weighted bipartite
//! graphs, plus the supporting machinery a reproduction of Wang et al.
//! (ICDE 2021) needs:
//!
//! * [`graph::BipartiteGraph`] — immutable CSR storage with per-edge ids
//!   so algorithms can keep weights and liveness flags in flat arrays;
//! * [`builder::GraphBuilder`] — validated construction with duplicate
//!   handling;
//! * [`edgelist`] — KONECT-style TSV reading/writing;
//! * [`unionfind::UnionFind`] / [`unionfind::ComponentTracker`] — the
//!   union-find structure the expansion algorithm (Algorithm 5 in the
//!   paper) uses, extended with the per-component statistics needed for
//!   the Lemma 7/8 pruning rules;
//! * [`subgraph`] — edge-induced subgraphs and connected components;
//! * [`generators`] — synthetic bipartite graph generators (uniform,
//!   Chung–Lu power-law, planted communities, bicliques);
//! * [`weights`] — the four weight models evaluated in the paper's
//!   Table III (all-equal, uniform, skew-normal, random walk with restart);
//! * [`metrics`] — bipartite density, Jaccard similarity and rating
//!   statistics used by the effectiveness experiments;
//! * [`workspace`] — reusable, epoch-stamped scratch memory
//!   ([`workspace::Workspace`]) that keeps the whole query pipeline
//!   allocation-free after warm-up;
//! * [`arena`] — recyclable bump-arena storage ([`arena::ResultArena`])
//!   for query *results*, so the answers themselves stop allocating too
//!   once a serving worker is warm.
//!
//! Vertices live in a single `u32` id space: upper vertices first
//! (`0..n_upper`), then lower vertices. [`Vertex`] is a transparent
//! newtype; use [`BipartiteGraph::upper`]/[`BipartiteGraph::lower`] or the
//! [`Side`] accessors to move between the typed view and raw indices.

// Unsafe is confined to the one module that needs it (see the
// module-level `allow`); everything else in the crate is checked.
#![deny(unsafe_code)]

pub mod arena;
pub mod builder;
pub mod edgelist;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod projection;
pub mod subgraph;
pub mod unionfind;
pub mod weights;
pub mod workspace;

pub use arena::{ArenaEdges, ResultArena};
pub use builder::{BuildError, DuplicatePolicy, GraphBuilder};
pub use graph::{BipartiteGraph, EdgeId, Side, Vertex};
pub use subgraph::Subgraph;
pub use unionfind::UnionFind;
pub use workspace::{EdgeMap, EdgeSet, VertexMap, VertexSet, Workspace};

/// Edge weight type used throughout the library.
///
/// Weights are compared with [`f64::total_cmp`]; the algorithms never rely
/// on arithmetic beyond comparison, so any totally ordered value that fits
/// an `f64` (ratings, counts, RWR relevance scores) works.
pub type Weight = f64;
