//! Reusable scratch memory for the query pipeline.
//!
//! Every hot-path algorithm in this workspace (core peeling, index
//! retrieval, the SCS second-step kernels) needs the same few pieces of
//! per-run scratch: a couple of vertex/edge membership sets, a degree
//! array, a BFS queue and an output edge buffer. Allocating those fresh
//! per query makes every query Ω(n + m) in allocator traffic regardless
//! of how small the answer is. A [`Workspace`] owns them once, grows
//! monotonically to the largest graph it has served, and makes resets
//! O(1) via epoch stamping — so a warm workspace serves an unbounded
//! query stream with **zero** further heap allocations.
//!
//! The two building blocks:
//!
//! * [`VertexMap<T>`] / [`EdgeMap<T>`] — typed flat buffers indexed by
//!   [`Vertex`] / [`EdgeId`] (or by raw dense ids, for algorithms that
//!   re-index a community with local ids). Growth is monotone; callers
//!   initialise the prefix they use.
//! * [`VertexSet`] / [`EdgeSet`] — membership sets with O(1) [`clear`]:
//!   a slot is a member iff `stamp[i] == epoch`, so clearing is one
//!   epoch increment and never touches the array (the rare `u32` epoch
//!   wrap-around pays one O(n) re-zeroing).
//!
//! [`clear`]: VertexSet::clear
//!
//! # Example
//!
//! ```
//! use bigraph::workspace::Workspace;
//! use bigraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 0, 1.0);
//! b.add_edge(0, 1, 1.0);
//! let g = b.build().unwrap();
//!
//! let mut ws = Workspace::new();
//! ws.fit(&g); // grow once to the graph's size
//! let bytes = ws.heap_bytes();
//!
//! // A BFS using the reusable visited set: clear() is O(1), so running
//! // this once per query costs nothing between queries.
//! ws.visited.clear();
//! ws.queue.clear();
//! ws.visited.insert(g.upper(0));
//! ws.queue.push(g.upper(0).0);
//! // ... traverse ...
//!
//! ws.fit(&g); // a warm fit is allocation-free
//! assert_eq!(ws.heap_bytes(), bytes);
//! assert!(ws.allocations_avoided() > 0);
//! ```

use crate::graph::{BipartiteGraph, EdgeId, Vertex};

/// A typed flat buffer indexed by [`Vertex`] (or raw dense vertex ids).
///
/// Growth is monotone: [`VertexMap::ensure`] never shrinks, so a warm
/// map is reused allocation-free. The map does not reset values between
/// uses — callers initialise the prefix they read (which keeps the reset
/// cost proportional to the subproblem, not the graph).
#[derive(Debug, Clone, Default)]
pub struct VertexMap<T> {
    buf: Vec<T>,
}

/// A typed flat buffer indexed by [`EdgeId`] (or raw dense edge ids).
/// Same contract as [`VertexMap`].
#[derive(Debug, Clone, Default)]
pub struct EdgeMap<T> {
    buf: Vec<T>,
}

macro_rules! flat_map_impl {
    ($name:ident, $key:ty) => {
        impl<T> $name<T> {
            /// An empty map; grows on first [`Self::ensure`].
            pub fn new() -> Self {
                Self { buf: Vec::new() }
            }

            /// Grows the map to hold at least `n` slots, filling new
            /// slots with `fill`. Never shrinks. Returns `true` if the
            /// map actually grew (i.e. an allocation may have happened).
            pub fn ensure(&mut self, n: usize, fill: T) -> bool
            where
                T: Clone,
            {
                if self.buf.len() < n {
                    self.buf.resize(n, fill);
                    true
                } else {
                    false
                }
            }

            /// Resets the first `n` slots to `fill` (the slots a
            /// subproblem of size `n` will read).
            pub fn reset(&mut self, n: usize, fill: T)
            where
                T: Clone,
            {
                debug_assert!(n <= self.buf.len(), "reset beyond capacity");
                for slot in &mut self.buf[..n] {
                    *slot = fill.clone();
                }
            }

            /// Current capacity in slots.
            pub fn len(&self) -> usize {
                self.buf.len()
            }

            /// `true` iff no slot has ever been reserved.
            pub fn is_empty(&self) -> bool {
                self.buf.is_empty()
            }

            /// The underlying slice.
            pub fn as_slice(&self) -> &[T] {
                &self.buf
            }

            /// The underlying mutable slice.
            pub fn as_mut_slice(&mut self) -> &mut [T] {
                &mut self.buf
            }

            /// Resident heap bytes.
            pub fn heap_bytes(&self) -> usize {
                self.buf.capacity() * std::mem::size_of::<T>()
            }
        }

        impl<T> std::ops::Index<$key> for $name<T> {
            type Output = T;
            #[inline]
            fn index(&self, k: $key) -> &T {
                &self.buf[k.index()]
            }
        }

        impl<T> std::ops::IndexMut<$key> for $name<T> {
            #[inline]
            fn index_mut(&mut self, k: $key) -> &mut T {
                &mut self.buf[k.index()]
            }
        }

        impl<T> std::ops::Index<usize> for $name<T> {
            type Output = T;
            #[inline]
            fn index(&self, i: usize) -> &T {
                &self.buf[i]
            }
        }

        impl<T> std::ops::IndexMut<usize> for $name<T> {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut T {
                &mut self.buf[i]
            }
        }
    };
}

flat_map_impl!(VertexMap, Vertex);
flat_map_impl!(EdgeMap, EdgeId);

/// Epoch-stamped membership set over dense ids.
///
/// `stamp[i] == epoch` means `i` is a member. [`StampSet::clear`] bumps
/// the epoch, invalidating every membership in O(1); the stamp array is
/// only rewritten on growth or on the (rare) epoch wrap-around. The
/// epoch starts at 1 and 0 is never a valid epoch, so `remove` can
/// unconditionally stamp 0.
#[derive(Debug, Clone)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Default for StampSet {
    fn default() -> Self {
        StampSet {
            stamp: Vec::new(),
            epoch: 1,
        }
    }
}

impl StampSet {
    /// An empty set; grows on first [`Self::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the id space to at least `n`. New slots are non-members.
    /// Returns `true` if the set actually grew.
    pub fn ensure(&mut self, n: usize) -> bool {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            true
        } else {
            false
        }
    }

    /// Empties the set in O(1) (epoch bump). The rare `u32` wrap-around
    /// re-zeroes the stamps so stale stamps can never alias a new epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `i`; returns `true` if it was not already a member.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let fresh = self.stamp[i] != self.epoch;
        self.stamp[i] = self.epoch;
        fresh
    }

    /// Removes `i`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let was = self.stamp[i] == self.epoch;
        self.stamp[i] = 0;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Number of addressable ids (not the member count).
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// `true` iff the id space is empty.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Resident heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.stamp.capacity() * std::mem::size_of::<u32>()
    }
}

/// Epoch-stamped set of vertices. See [`StampSet`] for the contract;
/// the typed methods take [`Vertex`], the `*_id` methods raw dense ids
/// (used by algorithms that re-index communities with local ids).
#[derive(Debug, Clone, Default)]
pub struct VertexSet(StampSet);

/// Epoch-stamped set of edges. See [`VertexSet`].
#[derive(Debug, Clone, Default)]
pub struct EdgeSet(StampSet);

macro_rules! stamp_set_impl {
    ($name:ident, $key:ty) => {
        impl $name {
            /// An empty set; grows on first [`Self::ensure`].
            pub fn new() -> Self {
                Self::default()
            }

            /// Grows the id space to at least `n`; returns `true` on
            /// actual growth.
            pub fn ensure(&mut self, n: usize) -> bool {
                self.0.ensure(n)
            }

            /// O(1) emptying (epoch bump).
            pub fn clear(&mut self) {
                self.0.clear()
            }

            /// Typed insert.
            #[inline]
            pub fn insert(&mut self, k: $key) -> bool {
                self.0.insert(k.index())
            }

            /// Typed remove.
            #[inline]
            pub fn remove(&mut self, k: $key) -> bool {
                self.0.remove(k.index())
            }

            /// Typed membership test.
            #[inline]
            pub fn contains(&self, k: $key) -> bool {
                self.0.contains(k.index())
            }

            /// Raw-id insert (for dense local id spaces).
            #[inline]
            pub fn insert_id(&mut self, i: usize) -> bool {
                self.0.insert(i)
            }

            /// Raw-id remove.
            #[inline]
            pub fn remove_id(&mut self, i: usize) -> bool {
                self.0.remove(i)
            }

            /// Raw-id membership test.
            #[inline]
            pub fn contains_id(&self, i: usize) -> bool {
                self.0.contains(i)
            }

            /// Number of addressable ids.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` iff the id space is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Resident heap bytes.
            pub fn heap_bytes(&self) -> usize {
                self.0.heap_bytes()
            }
        }
    };
}

stamp_set_impl!(VertexSet, Vertex);
stamp_set_impl!(EdgeSet, EdgeId);

/// Reuse accounting: how much allocator traffic the workspace absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Scratch-buffer acquisitions served (one per buffer per
    /// [`Workspace::fit_sizes`] call).
    pub acquisitions: u64,
    /// Acquisitions that had to grow a buffer (≈ real allocations).
    pub grows: u64,
}

impl WorkspaceStats {
    /// Acquisitions served from already-resident memory — the buffer
    /// set-ups a fresh-buffer implementation would have performed with
    /// an allocation each. Counted once per buffer per [`Workspace`]
    /// fit, so a query entering several kernels contributes each
    /// kernel's fit.
    pub fn allocations_avoided(&self) -> u64 {
        self.acquisitions - self.grows
    }
}

/// The shared scratch arena of the query pipeline: one of each typed
/// buffer, grown monotonically to the largest graph seen.
///
/// Field semantics are by convention (the workspace is a memory pool,
/// not an algorithm): `visited` marks BFS/DFS discovery, `dead` marks
/// peeled-away vertices, `edges` is whichever edge membership the
/// running kernel needs (alive set, inserted set, …), `degree` holds
/// live degrees, `queue`/`stack` are traversal worklists of raw vertex
/// ids, and `out_edges` receives result edge ids. Every algorithm that
/// takes `&mut Workspace` documents which fields it clobbers; two
/// algorithms can share one workspace sequentially, never concurrently.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// BFS/DFS discovery marks.
    pub visited: VertexSet,
    /// Vertices removed by peeling (membership = removed).
    pub dead: VertexSet,
    /// General-purpose edge membership (liveness, insertion, …).
    pub edges: EdgeSet,
    /// Per-vertex live degrees.
    pub degree: VertexMap<u32>,
    /// Primary traversal worklist (vertex ids).
    pub queue: Vec<u32>,
    /// Secondary worklist (cascades).
    pub stack: Vec<u32>,
    /// Result edge buffer.
    pub out_edges: Vec<EdgeId>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures every buffer can serve a graph with `n` vertices and `m`
    /// edges. Grow-only; a warm call is allocation-free.
    pub fn fit_sizes(&mut self, n: usize, m: usize) {
        let mut grows = 0u64;
        grows += self.visited.ensure(n) as u64;
        grows += self.dead.ensure(n) as u64;
        grows += self.edges.ensure(m) as u64;
        grows += self.degree.ensure(n, 0) as u64;
        grows += grow_vec(&mut self.queue, n) as u64;
        grows += grow_vec(&mut self.stack, n) as u64;
        grows += grow_vec(&mut self.out_edges, m) as u64;
        self.stats.acquisitions += 7;
        self.stats.grows += grows;
    }

    /// [`Self::fit_sizes`] for a concrete graph.
    pub fn fit(&mut self, g: &BipartiteGraph) {
        self.fit_sizes(g.n_vertices(), g.n_edges());
    }

    /// Resident heap bytes across all scratch buffers — the price of
    /// keeping the workspace warm.
    pub fn heap_bytes(&self) -> usize {
        self.visited.heap_bytes()
            + self.dead.heap_bytes()
            + self.edges.heap_bytes()
            + self.degree.heap_bytes()
            + self.queue.capacity() * std::mem::size_of::<u32>()
            + self.stack.capacity() * std::mem::size_of::<u32>()
            + self.out_edges.capacity() * std::mem::size_of::<EdgeId>()
    }

    /// Reuse accounting since construction.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Scratch acquisitions served without allocating (see
    /// [`WorkspaceStats::allocations_avoided`]).
    pub fn allocations_avoided(&self) -> u64 {
        self.stats.allocations_avoided()
    }
}

/// Reserves capacity for `n` elements in a reusable worklist without
/// touching its contents; returns `true` if it grew. The grow-only
/// primitive behind [`Workspace::fit_sizes`], shared by downstream
/// workspaces (e.g. `scs::QueryWorkspace`) so every scratch buffer in
/// the pipeline follows one growth policy.
pub fn grow_vec<T>(v: &mut Vec<T>, n: usize) -> bool {
    if v.capacity() < n {
        v.reserve(n - v.len()); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stamp_set_clear_is_logical() {
        let mut s = StampSet::new();
        s.ensure(4);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(!s.contains(0));
        s.clear();
        assert!(!s.contains(1));
        assert!(s.insert(1));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(!s.contains(1));
    }

    #[test]
    fn stamp_set_survives_epoch_wraparound() {
        let mut s = StampSet::new();
        s.ensure(2);
        s.epoch = u32::MAX - 1;
        s.insert(0);
        s.clear(); // epoch == u32::MAX
        assert!(!s.contains(0));
        s.insert(1);
        s.clear(); // wrap: stamps re-zeroed, epoch back to 1
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(0));
        assert!(!s.contains(1));
        s.insert(0);
        assert!(s.contains(0));
    }

    #[test]
    fn typed_sets_accept_vertices_and_ids() {
        let mut vs = VertexSet::new();
        vs.ensure(3);
        assert!(vs.insert(Vertex(2)));
        assert!(vs.contains(Vertex(2)));
        assert!(vs.contains_id(2));
        assert!(vs.remove_id(2));
        assert!(!vs.contains(Vertex(2)));

        let mut es = EdgeSet::new();
        es.ensure(2);
        assert!(es.insert_id(0));
        assert!(es.contains(EdgeId(0)));
        assert!(es.remove(EdgeId(0)));
        assert!(!es.contains_id(0));
    }

    #[test]
    fn maps_index_both_ways() {
        let mut m: VertexMap<u32> = VertexMap::new();
        assert!(m.ensure(3, 7));
        assert!(!m.ensure(2, 0)); // never shrinks
        assert_eq!(m.len(), 3);
        m[Vertex(1)] = 5;
        assert_eq!(m[1usize], 5);
        m.reset(2, 0);
        assert_eq!(m.as_slice(), &[0, 0, 7]);

        let mut e: EdgeMap<bool> = EdgeMap::new();
        e.ensure(2, false);
        e[EdgeId(1)] = true;
        assert!(e[1usize]);
        assert!(e.heap_bytes() >= 2);
    }

    #[test]
    fn workspace_fit_grows_once() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        let g = b.build().unwrap();
        let mut ws = Workspace::new();
        ws.fit(&g);
        let first = ws.stats();
        assert!(first.grows > 0);
        let bytes = ws.heap_bytes();
        assert!(bytes > 0);
        ws.fit(&g);
        let second = ws.stats();
        assert_eq!(second.grows, first.grows, "warm fit must not grow");
        assert_eq!(ws.heap_bytes(), bytes);
        assert!(ws.allocations_avoided() >= 7);
        // Buffers are addressable for the fitted graph.
        ws.visited.clear();
        assert!(ws.visited.insert(g.upper(1)));
        ws.degree.reset(g.n_vertices(), 0);
        assert_eq!(ws.degree[g.lower(0)], 0);
    }

    #[test]
    fn workspace_grows_to_largest_graph_seen() {
        let mut ws = Workspace::new();
        ws.fit_sizes(4, 4);
        let small = ws.heap_bytes();
        ws.fit_sizes(100, 200);
        let big = ws.heap_bytes();
        assert!(big > small);
        ws.fit_sizes(10, 10); // shrinking graph: capacity is retained
        assert_eq!(ws.heap_bytes(), big);
    }
}
