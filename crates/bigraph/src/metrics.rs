//! Community quality metrics used by the effectiveness experiments
//! (Fig. 6, Table II of the paper).

use crate::graph::Vertex;
use crate::subgraph::Subgraph;
use crate::Weight;

/// Bipartite graph density `d(G) = |E| / sqrt(|U|·|L|)` (Kannan & Vinay),
/// as used in Fig. 6(a). Returns 0 for an empty subgraph.
pub fn bipartite_density(sub: &Subgraph<'_>) -> f64 {
    if sub.is_empty() {
        return 0.0;
    }
    let (us, ls) = sub.layer_vertices();
    sub.size() as f64 / ((us.len() as f64) * (ls.len() as f64)).sqrt()
}

/// Jaccard similarity of the vertex sets of two subgraphs, as the `Sim`
/// column of Table II. Both subgraphs must come from the same graph.
pub fn jaccard_similarity(a: &Subgraph<'_>, b: &Subgraph<'_>) -> f64 {
    let va = a.vertices();
    let vb = b.vertices();
    if va.is_empty() && vb.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let mut i = 0;
    let mut j = 0;
    while i < va.len() && j < vb.len() {
        match va[i].cmp(&vb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = va.len() + vb.len() - inter;
    inter as f64 / union as f64
}

/// The Table II statistics row for one community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityStats {
    /// `|U|`: number of upper vertices (users).
    pub n_upper: usize,
    /// `|M|`: number of lower vertices (movies/items).
    pub n_lower: usize,
    /// Number of edges.
    pub n_edges: usize,
    /// `R_avg`: mean edge weight.
    pub avg_weight: Weight,
    /// `R_min`: minimum edge weight.
    pub min_weight: Weight,
    /// `M_avg`: average degree of upper vertices (`|E| / |U|`) — "average
    /// number of movies a user watched in the community".
    pub avg_upper_degree: f64,
    /// Bipartite density `d(G)`.
    pub density: f64,
}

/// Computes [`CommunityStats`] for a subgraph. Returns `None` if empty.
pub fn community_stats(sub: &Subgraph<'_>) -> Option<CommunityStats> {
    if sub.is_empty() {
        return None;
    }
    let (us, ls) = sub.layer_vertices();
    Some(CommunityStats {
        n_upper: us.len(),
        n_lower: ls.len(),
        n_edges: sub.size(),
        avg_weight: sub.mean_weight().expect("nonempty"),
        min_weight: sub.min_weight().expect("nonempty"),
        avg_upper_degree: sub.size() as f64 / us.len() as f64,
        density: bipartite_density(sub),
    })
}

/// Fraction of upper vertices in `sub` that give fewer than
/// `threshold_count` edges with weight ≥ `good_weight` — the paper's
/// "dislike users" metric (Fig. 6(b)): a user is a dislike user if they
/// give fewer than `0.6·α` ratings ≥ 4.
pub fn dislike_fraction(sub: &Subgraph<'_>, good_weight: Weight, threshold_count: f64) -> f64 {
    let (us, _) = sub.layer_vertices();
    if us.is_empty() {
        return 0.0;
    }
    let g = sub.graph();
    let dislikes = us
        .iter()
        .filter(|&&u| {
            let good = g
                .neighbors_with_edges(u)
                .filter(|&(_, e)| sub.contains_edge(e) && g.weight(e) >= good_weight)
                .count();
            (good as f64) < threshold_count
        })
        .count();
    dislikes as f64 / us.len() as f64
}

/// Average over upper vertices of the mean weight of their incident edges
/// inside `sub` (used to describe per-user rating behaviour in Fig. 7).
pub fn mean_upper_vertex_weight(sub: &Subgraph<'_>) -> Vec<(Vertex, Weight)> {
    let (us, _) = sub.layer_vertices();
    let g = sub.graph();
    us.into_iter()
        .map(|u| {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for (_, e) in g.neighbors_with_edges(u) {
                if sub.contains_edge(e) {
                    sum += g.weight(e);
                    cnt += 1;
                }
            }
            (u, if cnt == 0 { 0.0 } else { sum / cnt as f64 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::complete_biclique;

    #[test]
    fn density_of_biclique() {
        let g = complete_biclique(4, 9);
        let sub = Subgraph::full(&g);
        // d = 36 / sqrt(36) = 6.
        assert!((bipartite_density(&sub) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn density_empty() {
        let g = complete_biclique(2, 2);
        assert_eq!(bipartite_density(&Subgraph::empty(&g)), 0.0);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        let g = b.build().unwrap();
        let full = Subgraph::full(&g);
        let a = full.component_of(g.upper(0));
        let c = full.component_of(g.upper(1));
        assert_eq!(jaccard_similarity(&a, &a), 1.0);
        assert_eq!(jaccard_similarity(&a, &c), 0.0);
        assert!((jaccard_similarity(&full, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_weighted_square() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 4.0);
        b.add_edge(1, 0, 4.0);
        b.add_edge(1, 1, 6.0);
        let g = b.build().unwrap();
        let s = community_stats(&Subgraph::full(&g)).unwrap();
        assert_eq!(s.n_upper, 2);
        assert_eq!(s.n_lower, 2);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.avg_weight, 4.0);
        assert_eq!(s.min_weight, 2.0);
        assert_eq!(s.avg_upper_degree, 2.0);
        assert!(community_stats(&Subgraph::empty(&g)).is_none());
    }

    #[test]
    fn dislike_users_counted() {
        // u0 gives two good ratings (>= 4); u1 gives none.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0);
        b.add_edge(0, 1, 4.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 1, 2.0);
        let g = b.build().unwrap();
        let sub = Subgraph::full(&g);
        let frac = dislike_fraction(&sub, 4.0, 2.0);
        assert!((frac - 0.5).abs() < 1e-12);
        // Looser requirement: nobody is a dislike user at threshold 0.
        assert_eq!(dislike_fraction(&sub, 4.0, 0.0), 0.0);
    }

    #[test]
    fn per_user_means() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 4.0);
        b.add_edge(1, 1, 5.0);
        let g = b.build().unwrap();
        let sub = Subgraph::full(&g);
        let means = mean_upper_vertex_weight(&sub);
        assert_eq!(means.len(), 2);
        assert_eq!(means[0], (g.upper(0), 3.0));
        assert_eq!(means[1], (g.upper(1), 5.0));
    }
}
