//! Edge weight models.
//!
//! The paper's Table III evaluates four weight distributions on the
//! Discogs dataset: **AE** (all equal), **RW** (random walk with restart
//! relevance, the model also used to weight the unweighted datasets DT and
//! PA), **UF** (uniform), and **SK** (skewed normal, skewness ≈ 1.02).
//! [`WeightModel`] implements all four plus an integer-ratings model used
//! by the MovieLens-style generator.

use crate::graph::{BipartiteGraph, Vertex};
use crate::Weight;
use rand::Rng;
use std::collections::HashMap;

/// A distribution from which edge weights are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightModel {
    /// **AE**: every edge gets `value`. Community significance degenerates
    /// and every algorithm short-circuits to returning `C_{α,β}(q)`.
    AllEqual {
        /// The common weight.
        value: Weight,
    },
    /// **UF**: weights uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: Weight,
        /// Upper bound (exclusive).
        hi: Weight,
    },
    /// **SK**: skew-normal distribution with the given location, scale and
    /// shape. Shape 5.0 gives sample skewness ≈ 1.0, matching the paper's
    /// "skewed normal distribution with skewness = 1.02".
    SkewNormal {
        /// Location parameter ξ.
        location: f64,
        /// Scale parameter ω (> 0).
        scale: f64,
        /// Shape parameter α; 0 reduces to a normal distribution.
        shape: f64,
    },
    /// **RW**: random walk with restart relevance (Tong et al., ICDM'06).
    /// The weight of edge `(u, v)` is the empirical visiting rate of `v`
    /// in restart-walks started at `u`, Laplace-smoothed and scaled.
    RandomWalk {
        /// Restart probability at every step (0 < restart < 1).
        restart: f64,
        /// Number of walk steps simulated per upper vertex.
        steps_per_vertex: usize,
        /// Multiplier applied to the visiting rate.
        scale: f64,
    },
    /// Integer ratings `1..=levels`, uniform. A crude stand-in for rating
    /// data when the taste-model generator is not needed.
    Ratings {
        /// Number of rating levels (e.g. 5 for 1–5 stars).
        levels: u32,
    },
}

impl WeightModel {
    /// Short uppercase tag matching the paper's Table III column names.
    pub fn tag(&self) -> &'static str {
        match self {
            WeightModel::AllEqual { .. } => "AE",
            WeightModel::Uniform { .. } => "UF",
            WeightModel::SkewNormal { .. } => "SK",
            WeightModel::RandomWalk { .. } => "RW",
            WeightModel::Ratings { .. } => "RT",
        }
    }

    /// The paper's four Table III models with the parameters used by the
    /// reproduction harness.
    pub fn table3_models() -> Vec<WeightModel> {
        vec![
            WeightModel::AllEqual { value: 1.0 },
            WeightModel::RandomWalk {
                restart: 0.15,
                steps_per_vertex: 200,
                scale: 100.0,
            },
            WeightModel::Uniform { lo: 0.0, hi: 1.0 },
            WeightModel::SkewNormal {
                location: 0.0,
                scale: 1.0,
                shape: 5.0,
            },
        ]
    }

    /// Returns a re-weighted copy of `g` with weights drawn from `self`.
    pub fn apply<R: Rng>(&self, g: &BipartiteGraph, rng: &mut R) -> BipartiteGraph {
        match *self {
            WeightModel::AllEqual { value } => g.reweighted(|_, _, _| value),
            WeightModel::Uniform { lo, hi } => {
                assert!(lo < hi, "uniform model needs lo < hi");
                g.reweighted(|_, _, _| rng.gen_range(lo..hi))
            }
            WeightModel::SkewNormal {
                location,
                scale,
                shape,
            } => {
                assert!(scale > 0.0, "skew-normal scale must be positive");
                g.reweighted(|_, _, _| location + scale * sample_skew_normal(shape, rng))
            }
            WeightModel::RandomWalk {
                restart,
                steps_per_vertex,
                scale,
            } => apply_rwr(g, restart, steps_per_vertex, scale, rng),
            WeightModel::Ratings { levels } => {
                assert!(levels >= 1, "need at least one rating level");
                g.reweighted(|_, _, _| rng.gen_range(1..=levels) as Weight)
            }
        }
    }
}

/// Standard normal via Box–Muller (the `rand` crate alone has no normal
/// distribution and `rand_distr` is outside the approved dependency set).
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Standard skew-normal with shape `alpha` via the Azzalini
/// representation: `X = δ|Z0| + √(1−δ²) Z1` with `δ = α/√(1+α²)`.
fn sample_skew_normal<R: Rng>(alpha: f64, rng: &mut R) -> f64 {
    let delta = alpha / (1.0 + alpha * alpha).sqrt();
    let z0 = sample_standard_normal(rng);
    let z1 = sample_standard_normal(rng);
    delta * z0.abs() + (1.0 - delta * delta).sqrt() * z1
}

/// Random-walk-with-restart weights: simulates one long restarting walk
/// per upper vertex and sets `w(u, v)` from the visit frequency of `v`.
fn apply_rwr<R: Rng>(
    g: &BipartiteGraph,
    restart: f64,
    steps_per_vertex: usize,
    scale: f64,
    rng: &mut R,
) -> BipartiteGraph {
    assert!(
        (0.0..1.0).contains(&restart) && restart > 0.0,
        "restart probability must be in (0,1)"
    );
    let mut new_weights: Vec<Weight> = vec![0.0; g.n_edges()];
    let mut visits: HashMap<Vertex, u32> = HashMap::new();

    for u in g.upper_vertices() {
        if g.degree(u) == 0 {
            continue;
        }
        visits.clear();
        let mut cur = u;
        for _ in 0..steps_per_vertex {
            if rng.gen_bool(restart) {
                cur = u;
            }
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                cur = u;
                continue;
            }
            cur = nbrs[rng.gen_range(0..nbrs.len())];
            if !g.is_upper(cur) {
                *visits.entry(cur).or_insert(0) += 1;
            }
        }
        // Laplace smoothing keeps zero-visit neighbor edges positive.
        let deg = g.degree(u) as f64;
        let total: u32 = g
            .neighbors(u)
            .iter()
            .map(|v| visits.get(v).copied().unwrap_or(0))
            .sum();
        for (v, e) in g.neighbors_with_edges(u) {
            let c = visits.get(&v).copied().unwrap_or(0) as f64;
            new_weights[e.index()] = scale * (c + 1.0) / (total as f64 + deg);
        }
    }
    g.reweighted(|e, _, _| new_weights[e.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_bipartite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph(seed: u64) -> BipartiteGraph {
        random_bipartite(40, 40, 400, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn all_equal() {
        let g = sample_graph(1);
        let mut rng = StdRng::seed_from_u64(2);
        let w = WeightModel::AllEqual { value: 3.5 }.apply(&g, &mut rng);
        assert!(w.weights().iter().all(|&x| x == 3.5));
        assert_eq!(w.n_edges(), g.n_edges());
    }

    #[test]
    fn uniform_in_range() {
        let g = sample_graph(3);
        let mut rng = StdRng::seed_from_u64(4);
        let w = WeightModel::Uniform { lo: 2.0, hi: 5.0 }.apply(&g, &mut rng);
        assert!(w.weights().iter().all(|&x| (2.0..5.0).contains(&x)));
        // Not all equal.
        let first = w.weights()[0];
        assert!(w.weights().iter().any(|&x| x != first));
    }

    #[test]
    fn ratings_are_integer_levels() {
        let g = sample_graph(5);
        let mut rng = StdRng::seed_from_u64(6);
        let w = WeightModel::Ratings { levels: 5 }.apply(&g, &mut rng);
        assert!(w
            .weights()
            .iter()
            .all(|&x| x.fract() == 0.0 && (1.0..=5.0).contains(&x)));
    }

    #[test]
    fn skew_normal_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_skew_normal(5.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        let skewness = m3 / var.powf(1.5);
        // Shape 5 ⇒ theoretical skewness ≈ 0.90–1.0; the paper quotes 1.02.
        assert!(
            (0.7..1.2).contains(&skewness),
            "sample skewness {skewness} outside expected band"
        );
    }

    #[test]
    fn shape_zero_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_skew_normal(0.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be ~0");
    }

    #[test]
    fn rwr_produces_positive_weights() {
        let g = sample_graph(9);
        let mut rng = StdRng::seed_from_u64(10);
        let model = WeightModel::RandomWalk {
            restart: 0.2,
            steps_per_vertex: 100,
            scale: 10.0,
        };
        let w = model.apply(&g, &mut rng);
        assert!(w.weights().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rwr_favors_frequent_neighbors() {
        // Star: u0 adjacent to l0..l9, plus l0 also adjacent to u1..u5 so
        // walks from u0 bounce back through l0 more often than through
        // leaves... actually from u0 every neighbor is equally likely per
        // step, so instead test a structural asymmetry: u0-l0 plus
        // u0-l1, where l1 has many other partners pulling walks away.
        let mut b = crate::GraphBuilder::new();
        b.add_edge(0, 0, 1.0); // u0-l0, l0 exclusive to u0
        b.add_edge(0, 1, 1.0); // u0-l1, l1 shared
        for u in 1..=8 {
            b.add_edge(u, 1, 1.0);
        }
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let model = WeightModel::RandomWalk {
            restart: 0.3,
            steps_per_vertex: 4_000,
            scale: 1.0,
        };
        let w = model.apply(&g, &mut rng);
        let e_excl = w.find_edge(w.upper(0), w.lower(0)).unwrap();
        let e_shared = w.find_edge(w.upper(0), w.lower(1)).unwrap();
        // Walks from u0 that step to l1 often wander off to u1..u8 and
        // only return via restart; l0 always bounces straight back to u0,
        // so l0 accumulates at least comparable visits. The exclusive
        // neighbor must not be drowned out.
        assert!(
            w.weight(e_excl) > 0.5 * w.weight(e_shared),
            "exclusive {} vs shared {}",
            w.weight(e_excl),
            w.weight(e_shared)
        );
    }

    #[test]
    fn tags() {
        for (m, t) in WeightModel::table3_models()
            .iter()
            .zip(["AE", "RW", "UF", "SK"])
        {
            assert_eq!(m.tag(), t);
        }
    }
}
