//! Bump-arena storage for query *results*.
//!
//! The workspace layer ([`crate::workspace`]) made the query pipeline's
//! scratch allocation-free; results were the last per-query heap
//! traffic: every answer materialised its edge list in a fresh
//! `Vec<EdgeId>`. A [`ResultArena`] removes that cost. It owns a small
//! pool of fixed-size **slabs** (flat `EdgeId` arrays) and hands out
//! result storage by bump allocation: storing a result copies its edge
//! ids into the tail of the current slab and returns an [`ArenaEdges`]
//! handle — a shared, immutable view that can be cached and shipped
//! across threads like a `Vec`, at the price of one refcount bump per
//! clone and **zero** allocations per store once the pool is warm.
//!
//! # Slab lifecycle
//!
//! ```text
//!   open ──fill──▶ sealed ──all handles dropped──▶ free ──reuse──▶ open
//!                     ▲                              │ (generation += 1)
//!                     └── live handles pin the slab ─┘
//! ```
//!
//! * Every slab is owned by its arena's pool forever (an `Arc` held in
//!   `pool`); handles hold additional `Arc`s.
//! * A slab is **recycled** only when the arena observes
//!   `Arc::strong_count == 1`, i.e. no handle anywhere references it —
//!   so a live handle (a cached result, a response a client still
//!   holds, a summary published by another worker's sub-batch) pins its
//!   slab and can never observe recycled storage.
//! * Recycling bumps the slab's **generation** tag. Handles record the
//!   generation they were created under; [`ArenaEdges::pinned`] lets
//!   tests prove the invariant (a live handle's generation always
//!   matches its slab's).
//!
//! The arena is single-owner (`&mut self` to store); one arena per
//! worker thread is the intended deployment, mirroring the per-worker
//! workspaces. Handles are `Send + Sync`.
//!
//! # Safety
//!
//! Slab contents are written through [`std::cell::UnsafeCell`] while
//! earlier regions of the same slab may be read through handles. This
//! is sound because the regions are disjoint and frozen:
//!
//! * only the owning arena writes, and only at `fill..` (the unfrozen
//!   tail); every handle covers a range below the `fill` at its
//!   creation, which never shrinks within a generation;
//! * a generation reset (`fill = 0`) requires `strong_count == 1`, and
//!   an `Acquire` fence after that observation pairs with `Arc`'s
//!   `Release` refcount decrement, so the last handle's final reads —
//!   on any thread — happen-before the overwrites;
//! * cross-thread visibility of the writes is established by whatever
//!   synchronisation transfers the handle (a mutex-protected cache or
//!   flight table, a channel) — the same argument as for any `Send`
//!   value.

// The crate denies `unsafe_code`; this module is the one exception,
// for the `UnsafeCell` slab storage. Every site is budgeted in
// `unsafe-allowlist.txt` and checked by `scs analyze`.
#![allow(unsafe_code)]

use crate::graph::EdgeId;
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default slab capacity in edges (256 KiB of `EdgeId`s): large enough
/// that slab turnover is rare, small enough that a pinned slab is cheap
/// to keep resident.
pub const DEFAULT_SLAB_EDGES: usize = 1 << 16;

/// One fixed-capacity storage block. Created by a [`ResultArena`],
/// shared with [`ArenaEdges`] handles, recycled in place (generation
/// bump) when no handle references it.
pub struct Slab {
    data: Box<[UnsafeCell<EdgeId>]>,
    generation: AtomicU64,
}

// SAFETY: concurrent access is write-once-then-read-only per region —
// see the module-level safety argument.
unsafe impl Sync for Slab {}

impl Slab {
    fn with_capacity(cap: usize) -> Slab {
        Slab {
            data: (0..cap).map(|_| UnsafeCell::new(EdgeId(0))).collect(), // contract-ok: cold slab construction; slabs are pooled and recycled warm
            generation: AtomicU64::new(0),
        }
    }

    /// Capacity in edges.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// The current generation (bumped on every recycle).
    pub fn generation(&self) -> u64 {
        // ordering: Acquire pairs with the Release `fetch_add` in
        // `acquire_slab`: a reader that sees generation g also sees
        // every write that preceded the bump to g.
        self.generation.load(Ordering::Acquire)
    }
}

impl fmt::Debug for Slab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("capacity", &self.capacity())
            .field("generation", &self.generation())
            .finish()
    }
}

/// The process-wide zero-capacity slab backing empty results, so that
/// storing an empty edge list never opens (or consumes) real storage.
fn empty_slab() -> Arc<Slab> {
    static EMPTY: OnceLock<Arc<Slab>> = OnceLock::new();
    EMPTY
        .get_or_init(|| Arc::new(Slab::with_capacity(0))) // contract-ok: one-time global init of the shared empty slab
        .clone() // contract-ok: Arc refcount bump on the shared empty slab
}

/// A shared, immutable edge-id list stored in an arena slab — the
/// allocation-free stand-in for an owned `Vec<EdgeId>` result.
///
/// Cloning is a refcount bump. The handle pins its slab: as long as it
/// (or any clone) lives, the slab cannot be recycled, so
/// [`Self::as_slice`] is always the bytes that were stored.
#[derive(Clone)]
pub struct ArenaEdges {
    slab: Arc<Slab>,
    off: u32,
    len: u32,
    generation: u64,
}

impl ArenaEdges {
    /// An empty result; backed by the shared zero-capacity slab, so no
    /// arena (and no allocation, after the first call process-wide) is
    /// needed.
    pub fn empty() -> ArenaEdges {
        ArenaEdges {
            slab: empty_slab(),
            off: 0,
            len: 0,
            generation: 0,
        }
    }

    /// The stored edge ids (sorted and deduplicated if the producer
    /// stored them so — the kernels do).
    // scs-contract: no-alloc, no-panic, no-block — reading a stored
    // result is the warm leader path's last step: one pointer offset.
    pub fn as_slice(&self) -> &[EdgeId] {
        // SAFETY: the range [off, off+len) was fully written before the
        // handle was created and is frozen while any handle pins the
        // slab (see the module-level argument). UnsafeCell<EdgeId> is
        // layout-compatible with EdgeId.
        unsafe {
            std::slice::from_raw_parts(
                self.slab
                    .data
                    .as_ptr()
                    .cast::<EdgeId>()
                    .add(self.off as usize),
                self.len as usize,
            )
        }
    }

    /// Number of stored edges.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` iff no edge is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slab generation this handle was created under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The backing slab's *current* generation.
    pub fn slab_generation(&self) -> u64 {
        self.slab.generation()
    }

    /// `true` iff the backing storage still belongs to this handle's
    /// generation. For a live handle this is **always** true (the
    /// handle's refcount prevents recycling); tests assert it to prove
    /// the recycling protocol can never pull storage out from under a
    /// live result.
    pub fn pinned(&self) -> bool {
        self.generation == self.slab.generation()
    }
}

impl fmt::Debug for ArenaEdges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaEdges")
            .field("edges", &self.as_slice())
            .field("generation", &self.generation)
            .finish()
    }
}

impl PartialEq for ArenaEdges {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ArenaEdges {}

/// Reuse accounting for a [`ResultArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slabs owned by the arena (free, open or pinned).
    pub slabs: usize,
    /// Total slab storage, bytes — the price of keeping results
    /// allocation-free.
    pub resident_bytes: usize,
    /// Results stored since construction.
    pub stored: u64,
    /// Edges stored since construction.
    pub edges_stored: u64,
    /// Slab recycles (generation bumps) — stores served by reclaiming
    /// storage whose results had all been dropped.
    pub recycled: u64,
    /// Fresh slab allocations (the arena's only allocator traffic).
    pub allocated: u64,
}

/// Bump allocator for query results over recyclable slabs. See the
/// [module docs](self) for the lifecycle and safety argument.
#[derive(Debug, Default)]
pub struct ResultArena {
    pool: Vec<Arc<Slab>>,
    current: Option<Open>,
    slab_edges: usize,
    stored: u64,
    edges_stored: u64,
    recycled: u64,
    allocated: u64,
}

#[derive(Debug)]
struct Open {
    slab: Arc<Slab>,
    fill: usize,
}

impl ResultArena {
    /// An arena with the default slab capacity
    /// ([`DEFAULT_SLAB_EDGES`]). No slab is allocated until the first
    /// nonempty store.
    pub fn new() -> ResultArena {
        ResultArena::with_slab_capacity(DEFAULT_SLAB_EDGES)
    }

    /// An arena whose slabs hold `slab_edges` edges each (clamped into
    /// `1..=u32::MAX` — handle offsets are `u32`, so a larger slab
    /// could wrap them). Oversized results get a dedicated right-sized
    /// slab.
    pub fn with_slab_capacity(slab_edges: usize) -> ResultArena {
        ResultArena {
            slab_edges: slab_edges.clamp(1, u32::MAX as usize),
            ..ResultArena::default()
        }
    }

    /// Copies `edges` into slab storage and returns the handle. With a
    /// warm pool (every previously stored result dropped, or capacity
    /// already grown to the live set) this performs **zero** heap
    /// allocations; a store that finds no free slab allocates one and
    /// counts it in [`ArenaStats::allocated`].
    ///
    /// A result at least one slab long gets a **dedicated** slab that
    /// never becomes the bump target: oversized results never share
    /// storage, so one long-lived big result can only pin itself —
    /// without this, a big slab would fill with small results of mixed
    /// lifetimes and residency would grow with traffic instead of with
    /// the live set.
    pub fn store(&mut self, edges: &[EdgeId]) -> ArenaEdges {
        self.stored += 1;
        if edges.is_empty() {
            return ArenaEdges::empty();
        }
        let n = edges.len();
        assert!(u32::try_from(n).is_ok(), "result exceeds u32 edge count");
        if n >= self.slab_edges {
            let slab = self.acquire_slab(n, usize::MAX);
            let handle = Self::write(&slab, 0, edges);
            self.edges_stored += n as u64;
            return handle;
        }
        let has_room = self
            .current
            .as_ref()
            .is_some_and(|c| c.fill + n <= c.slab.capacity());
        if !has_room {
            // Seal: drop the arena's extra ref so the (possibly
            // still-pinned) slab can become free once its handles drop.
            // The bump target is capped at the nominal slab size so a
            // freed *dedicated* (oversized) slab is never repurposed as
            // the shared bump slab — it stays reserved for big results.
            self.current = None;
            let slab = self.acquire_slab(self.slab_edges, self.slab_edges);
            self.current = Some(Open { slab, fill: 0 });
        }
        let cur = self.current.as_mut().expect("slab opened above");
        let handle = Self::write(&cur.slab, cur.fill, edges);
        cur.fill += n;
        self.edges_stored += n as u64;
        handle
    }

    /// Copies `edges` into `slab` at `off` and returns the handle.
    /// `off` always fits a `u32`: slab capacities are clamped to
    /// `u32::MAX` (bump slabs) or equal a `u32`-checked result length
    /// (dedicated slabs), and `off + edges.len() <= capacity`.
    // scs-contract: no-alloc, no-block — storing into an already-open
    // slab must not touch the heap; growth happens in `acquire_slab`,
    // outside this contract.
    fn write(slab: &Arc<Slab>, off: usize, edges: &[EdgeId]) -> ArenaEdges {
        debug_assert!(u32::try_from(off).is_ok(), "offset exceeds u32");
        for (i, &e) in edges.iter().enumerate() {
            // SAFETY: [off, off+n) is unreferenced storage — either the
            // unfrozen tail of the open slab or a freshly
            // acquired dedicated slab (module-level argument).
            unsafe { *slab.data[off + i].get() = e };
        }
        ArenaEdges {
            slab: slab.clone(), // contract-ok: Arc refcount bump, no heap
            off: off as u32,
            len: edges.len() as u32,
            // ordering: Relaxed — the producer thread owns the open slab;
            // it is the only generation writer while the slab is open, so
            // this read races with nothing.
            generation: slab.generation.load(Ordering::Relaxed),
        }
    }

    /// A slab with room for `need` edges and capacity at most `max`:
    /// the best-fitting free pooled slab (smallest adequate capacity —
    /// big slabs are kept for big results), recycled in place with a
    /// generation bump, else a freshly allocated one of `need` edges.
    fn acquire_slab(&mut self, need: usize, max: usize) -> Arc<Slab> {
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in self.pool.iter().enumerate() {
            let cap = s.capacity();
            if cap >= need
                && cap <= max
                && Arc::strong_count(s) == 1
                && best.is_none_or(|(_, best_cap)| cap < best_cap)
            {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let slab = self.pool[i].clone(); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                                                 // strong_count was 1, so no handle exists to observe
                                                 // the bump or the subsequent overwrites — but the last
                                                 // handle may have been dropped on *another* thread, and
                                                 // its final reads must happen-before our writes. The
                                                 // Acquire fence pairs with `Arc`'s Release decrement on
                                                 // drop (the same protocol `Arc::get_mut` uses).
                                                 // ordering: Acquire fence — see above.
                std::sync::atomic::fence(Ordering::Acquire);
                // ordering: Release pairs with `Slab::generation`'s
                // Acquire load, sealing prior writes behind the bump.
                slab.generation.fetch_add(1, Ordering::Release);
                self.recycled += 1;
                slab
            }
            None => {
                let slab = Arc::new(Slab::with_capacity(need)); // contract-ok: cold pool-fill arm; a warm pool never reaches this
                self.pool.push(slab.clone()); // contract-ok: refcount bump; warm responses are arena-backed, no owned heap buffers
                self.allocated += 1;
                slab
            }
        }
    }

    /// Total slab storage, bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pool.iter().map(|s| s.capacity()).sum::<usize>() * std::mem::size_of::<EdgeId>()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            slabs: self.pool.len(),
            resident_bytes: self.resident_bytes(),
            stored: self.stored,
            edges_stored: self.edges_stored,
            recycled: self.recycled,
            allocated: self.allocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<EdgeId> {
        xs.iter().map(|&x| EdgeId(x)).collect()
    }

    #[test]
    fn store_and_read_back() {
        let mut arena = ResultArena::new();
        let a = arena.store(&ids(&[1, 2, 5]));
        let b = arena.store(&ids(&[7]));
        assert_eq!(a.as_slice(), &ids(&[1, 2, 5])[..]);
        assert_eq!(b.as_slice(), &ids(&[7])[..]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        // Both results share one slab.
        assert_eq!(arena.stats().slabs, 1);
        assert_eq!(arena.stats().stored, 2);
        assert_eq!(arena.stats().edges_stored, 4);
        // Clones are views of the same storage.
        let c = a.clone();
        assert_eq!(c, a);
        assert!(a.pinned() && c.pinned());
    }

    #[test]
    fn empty_results_need_no_slab() {
        let mut arena = ResultArena::new();
        let e = arena.store(&[]);
        assert!(e.is_empty());
        assert_eq!(e.as_slice(), &[]);
        assert_eq!(arena.stats().slabs, 0);
        assert_eq!(arena.stats().resident_bytes, 0);
        assert!(e.pinned());
        assert_eq!(e, ArenaEdges::empty());
    }

    #[test]
    fn full_slab_is_recycled_when_handles_drop() {
        let mut arena = ResultArena::with_slab_capacity(4);
        for round in 0..10 {
            // Fill the slab and drop the handles immediately: every
            // round after the first must reuse the same storage.
            for i in 0..2 {
                let h = arena.store(&ids(&[i, i + 1]));
                assert!(h.pinned(), "round {round}");
            }
        }
        let st = arena.stats();
        assert_eq!(st.slabs, 1, "one slab serves the whole stream");
        assert_eq!(st.allocated, 1);
        assert!(st.recycled >= 8, "recycled={}", st.recycled);
    }

    #[test]
    fn live_handles_pin_their_slab() {
        let mut arena = ResultArena::with_slab_capacity(4);
        let pinned = arena.store(&ids(&[9, 10, 11, 12])); // fills slab 1
        let gen_at_store = pinned.generation();
        // The next stores need a new slab: slab 1 is full *and* pinned.
        for i in 0..20 {
            arena.store(&ids(&[i, i + 1, i + 2, i + 3]));
        }
        assert_eq!(arena.stats().slabs, 2, "pinned slab cannot be recycled");
        // The pinned handle still reads its original bytes under the
        // generation it was stored at.
        assert_eq!(pinned.as_slice(), &ids(&[9, 10, 11, 12])[..]);
        assert!(pinned.pinned());
        assert_eq!(pinned.generation(), gen_at_store);
        assert_eq!(pinned.slab_generation(), gen_at_store);
        // Dropping it frees the slab for the next turnover.
        drop(pinned);
        let before = arena.stats().recycled;
        for i in 0..20 {
            arena.store(&ids(&[i, i + 1, i + 2, i + 3]));
        }
        assert_eq!(arena.stats().slabs, 2, "no further growth");
        assert!(arena.stats().recycled > before);
    }

    #[test]
    fn oversized_result_gets_dedicated_slab() {
        let mut arena = ResultArena::with_slab_capacity(2);
        let big = arena.store(&ids(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(big.len(), 8);
        assert_eq!(big.as_slice()[7], EdgeId(7));
        let st = arena.stats();
        assert_eq!(st.slabs, 1);
        assert_eq!(st.resident_bytes, 8 * std::mem::size_of::<EdgeId>());
    }

    #[test]
    fn handles_read_correctly_across_threads() {
        let mut arena = ResultArena::new();
        let h = arena.store(&ids(&[3, 1, 4, 1, 5]));
        let h2 = h.clone();
        let joined = std::thread::spawn(move || h2.as_slice().to_vec())
            .join()
            .unwrap();
        assert_eq!(joined, ids(&[3, 1, 4, 1, 5]));
        assert!(h.pinned());
    }

    #[test]
    fn freed_dedicated_slab_never_becomes_the_bump_target() {
        let mut arena = ResultArena::with_slab_capacity(4);
        // A big result gets a dedicated 12-cap slab; dropping it frees
        // the slab but must NOT make it the shared bump slab — else one
        // long-lived small result would pin 12 slots.
        let big = arena.store(&ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]));
        drop(big);
        let small = arena.store(&ids(&[1, 2]));
        assert_eq!(small.as_slice(), &ids(&[1, 2])[..]);
        // The small store opened a fresh 4-cap bump slab instead of
        // recycling the 12-cap one.
        assert_eq!(arena.stats().slabs, 2);
        assert_eq!(arena.stats().recycled, 0);
        // The 12-cap slab is still recycled for the next big result.
        let big2 = arena.store(&ids(&[5, 6, 7, 8, 9, 10]));
        assert_eq!(big2.len(), 6);
        assert_eq!(arena.stats().recycled, 1);
        assert_eq!(arena.stats().slabs, 2);
    }

    #[test]
    fn generation_tags_advance_only_on_recycle() {
        let mut arena = ResultArena::with_slab_capacity(2);
        let a = arena.store(&ids(&[1, 2]));
        assert_eq!(a.generation(), 0);
        drop(a);
        let b = arena.store(&ids(&[3, 4])); // forces a recycle of slab 1
        assert_eq!(b.generation(), 1);
        assert!(b.pinned());
        assert_eq!(arena.stats().recycled, 1);
    }
}
