//! Union-find (disjoint set union) with the per-component bookkeeping the
//! expansion algorithm (Algorithm 5 of the paper) needs.

/// Classic union-find with union by rank and path halving.
///
/// Amortized near-constant time per operation (inverse Ackermann), as the
/// paper assumes when it cites CLRS (ref.\[22\]) for maintaining the connected
/// subgraphs of the growing graph `G*`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    n_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        let mut uf = UnionFind {
            parent: Vec::new(),
            rank: Vec::new(),
            n_sets: 0,
        };
        uf.reset(n);
        uf
    }

    /// Reinitialises to `n` singleton sets in place, reusing the
    /// existing buffers (allocation-free once they are large enough).
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.n_sets = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn n_sets(&self) -> usize {
        self.n_sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`. Returns the new root if a merge
    /// happened, or `None` if they were already in the same set.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        self.n_sets -= 1;
        let (winner, loser) = match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra] += 1;
                (ra, rb)
            }
        };
        self.parent[loser] = winner as u32;
        Some(winner)
    }

    /// `true` iff `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Per-component statistics for Algorithm 5's pruning rules.
///
/// For the connected subgraph `C*` containing the query vertex, SCS-Expand
/// needs (Lemma 7) `|E(C*)|`, `|U(C*)|`, `|L(C*)|` and (Lemma 8) the number
/// of vertices with degree ≥ β and ≥ α — all in O(1) per expansion step.
/// `ComponentTracker` maintains them under two operations:
/// [`ComponentTracker::add_edge`], which inserts one edge of the growing
/// graph `G*`, and internal unions.
///
/// Degree thresholds `alpha` and `beta` are fixed per query.
#[derive(Debug, Clone, Default)]
pub struct ComponentTracker {
    uf: UnionFind,
    /// Degree of each vertex inside `G*`.
    degree: Vec<u32>,
    /// `true` once the vertex has at least one incident edge in `G*`.
    present: Vec<bool>,
    /// Per-root: number of edges in the component.
    comp_edges: Vec<u64>,
    /// Per-root: number of present upper vertices.
    comp_upper: Vec<u32>,
    /// Per-root: number of present lower vertices.
    comp_lower: Vec<u32>,
    /// Per-root: vertices with degree ≥ alpha.
    comp_deg_ge_alpha: Vec<u32>,
    /// Per-root: vertices with degree ≥ beta.
    comp_deg_ge_beta: Vec<u32>,
    alpha: u32,
    beta: u32,
    n_upper: u32,
}

impl ComponentTracker {
    /// Tracker over `n` vertices (`0..n_upper` upper) with thresholds
    /// `alpha`, `beta`.
    pub fn new(n: usize, n_upper: usize, alpha: usize, beta: usize) -> Self {
        let mut t = ComponentTracker {
            uf: UnionFind::new(0),
            degree: Vec::new(),
            present: Vec::new(),
            comp_edges: Vec::new(),
            comp_upper: Vec::new(),
            comp_lower: Vec::new(),
            comp_deg_ge_alpha: Vec::new(),
            comp_deg_ge_beta: Vec::new(),
            alpha: 0,
            beta: 0,
            n_upper: 0,
        };
        t.reset(n, n_upper, alpha, beta);
        t
    }

    /// Reinitialises the tracker in place for a new run, reusing every
    /// buffer (allocation-free once they are large enough). The reset
    /// cost is O(n) — proportional to the subproblem, not the graph.
    pub fn reset(&mut self, n: usize, n_upper: usize, alpha: usize, beta: usize) {
        fn refill<T: Clone>(v: &mut Vec<T>, n: usize, x: T) {
            v.clear();
            v.resize(n, x);
        }
        self.uf.reset(n);
        refill(&mut self.degree, n, 0);
        refill(&mut self.present, n, false);
        refill(&mut self.comp_edges, n, 0);
        refill(&mut self.comp_upper, n, 0);
        refill(&mut self.comp_lower, n, 0);
        refill(&mut self.comp_deg_ge_alpha, n, 0);
        refill(&mut self.comp_deg_ge_beta, n, 0);
        self.alpha = alpha as u32;
        self.beta = beta as u32;
        self.n_upper = n_upper as u32;
    }

    fn mark_present(&mut self, v: usize) {
        if !self.present[v] {
            self.present[v] = true;
            let root = self.uf.find(v);
            if (v as u32) < self.n_upper {
                self.comp_upper[root] += 1;
            } else {
                self.comp_lower[root] += 1;
            }
            // Degree-0 vertex: threshold counters only if thresholds are 0,
            // which the query parameters (α,β ≥ 1) exclude.
            if self.alpha == 0 {
                self.comp_deg_ge_alpha[root] += 1;
            }
            if self.beta == 0 {
                self.comp_deg_ge_beta[root] += 1;
            }
        }
    }

    fn bump_degree(&mut self, v: usize) {
        self.degree[v] += 1;
        let d = self.degree[v];
        let root = self.uf.find(v);
        if d == self.alpha {
            self.comp_deg_ge_alpha[root] += 1;
        }
        if d == self.beta {
            self.comp_deg_ge_beta[root] += 1;
        }
    }

    /// Inserts edge `(a, b)` into `G*`, updating component statistics.
    /// Returns the root of the merged component.
    pub fn add_edge(&mut self, a: usize, b: usize) -> usize {
        self.mark_present(a);
        self.mark_present(b);
        self.bump_degree(a);
        self.bump_degree(b);
        let (ra, rb) = (self.uf.find(a), self.uf.find(b));
        let root = if ra == rb {
            ra
        } else {
            let winner = self.uf.union(ra, rb).expect("distinct roots merge");
            let loser = if winner == ra { rb } else { ra };
            self.comp_edges[winner] += self.comp_edges[loser];
            self.comp_upper[winner] += self.comp_upper[loser];
            self.comp_lower[winner] += self.comp_lower[loser];
            self.comp_deg_ge_alpha[winner] += self.comp_deg_ge_alpha[loser];
            self.comp_deg_ge_beta[winner] += self.comp_deg_ge_beta[loser];
            winner
        };
        self.comp_edges[root] += 1;
        root
    }

    /// Representative of `v`'s component.
    pub fn find(&mut self, v: usize) -> usize {
        self.uf.find(v)
    }

    /// Number of edges in `v`'s component — `|E(C*)|`.
    pub fn edges_of(&mut self, v: usize) -> u64 {
        let r = self.uf.find(v);
        self.comp_edges[r]
    }

    /// `(|U(C*)|, |L(C*)|)` for `v`'s component.
    pub fn layer_sizes_of(&mut self, v: usize) -> (u32, u32) {
        let r = self.uf.find(v);
        (self.comp_upper[r], self.comp_lower[r])
    }

    /// Vertices in `v`'s component with degree ≥ α (Lemma 8 needs ≥ β of
    /// them) and with degree ≥ β (needs ≥ α of them).
    pub fn threshold_counts_of(&mut self, v: usize) -> (u32, u32) {
        let r = self.uf.find(v);
        (self.comp_deg_ge_alpha[r], self.comp_deg_ge_beta[r])
    }

    /// Degree of `v` inside `G*`.
    pub fn degree(&self, v: usize) -> u32 {
        self.degree[v]
    }

    /// `true` iff `v` has at least one edge in `G*`.
    pub fn is_present(&self, v: usize) -> bool {
        self.present[v]
    }

    /// Lemma 7 check for `v`'s component:
    /// `αβ − α − β ≤ |E(C*)| − |U(C*)| − |L(C*)|`.
    pub fn lemma7_holds(&mut self, v: usize) -> bool {
        let e = self.edges_of(v) as i64;
        let (u, l) = self.layer_sizes_of(v);
        let (a, b) = (self.alpha as i64, self.beta as i64);
        a * b - a - b <= e - u as i64 - l as i64
    }

    /// Lemma 8 check for `v`'s component: it contains ≥ α vertices of
    /// degree ≥ β and ≥ β vertices of degree ≥ α, and the query vertex
    /// itself meets its side's constraint.
    pub fn lemma8_holds(&mut self, q: usize) -> bool {
        let (ge_a, ge_b) = self.threshold_counts_of(q);
        if (ge_b as u64) < self.alpha as u64 || (ge_a as u64) < self.beta as u64 {
            return false;
        }
        let need = if (q as u32) < self.n_upper {
            self.alpha
        } else {
            self.beta
        };
        self.degree[q] >= need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.n_sets(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 2).is_some());
        assert!(uf.union(0, 2).is_none()); // already merged
        assert_eq!(uf.n_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.n_sets(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn tracker_counts_edges_and_layers() {
        // 2 uppers (0,1), 2 lowers (2,3); α=2, β=2.
        let mut t = ComponentTracker::new(4, 2, 2, 2);
        t.add_edge(0, 2);
        assert_eq!(t.edges_of(0), 1);
        assert_eq!(t.layer_sizes_of(0), (1, 1));
        t.add_edge(1, 3);
        // Two separate components.
        assert_eq!(t.edges_of(0), 1);
        assert_eq!(t.edges_of(1), 1);
        t.add_edge(0, 3); // merges them
        assert_eq!(t.edges_of(1), 3);
        assert_eq!(t.layer_sizes_of(1), (2, 2));
        t.add_edge(1, 2); // full 2x2 biclique
        assert_eq!(t.edges_of(0), 4);
        assert_eq!(t.threshold_counts_of(0), (4, 4));
        assert!(t.lemma7_holds(0)); // 4-4 = 0 ≥ 4-2-2 = 0
        assert!(t.lemma8_holds(0));
    }

    #[test]
    fn tracker_lemma8_requires_query_degree() {
        // α=1, β=2: q=0 upper needs degree ≥ 1.
        let mut t = ComponentTracker::new(4, 2, 1, 2);
        t.add_edge(1, 2);
        t.add_edge(1, 3);
        // q=0 not even present.
        assert!(!t.lemma8_holds(0));
        assert!(t.lemma8_holds(1));
    }

    #[test]
    fn tracker_degree_thresholds_cross_union() {
        // Path: 0-2, 1-2 ⇒ lower 2 has degree 2.
        let mut t = ComponentTracker::new(4, 2, 1, 2);
        t.add_edge(0, 2);
        assert_eq!(t.threshold_counts_of(0), (2, 0)); // both endpoints deg 1 ≥ α=1
        t.add_edge(1, 2);
        let (ge_a, ge_b) = t.threshold_counts_of(0);
        assert_eq!(ge_a, 3);
        assert_eq!(ge_b, 1); // vertex 2 reached degree 2 = β
        assert_eq!(t.degree(2), 2);
        assert!(t.is_present(1));
        assert!(!t.is_present(3));
    }
}
