//! Immutable CSR storage for undirected, edge-weighted bipartite graphs.

use crate::Weight;
use std::fmt;

/// Which layer of the bipartite graph a vertex belongs to.
///
/// The paper writes `U(G)` for the upper layer and `L(G)` for the lower
/// layer; in a user–item network the users are conventionally upper and the
/// items lower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The upper layer `U(G)` (degree constraint α).
    Upper,
    /// The lower layer `L(G)` (degree constraint β).
    Lower,
}

impl Side {
    /// The opposite layer.
    #[inline]
    pub fn flip(self) -> Side {
        match self {
            Side::Upper => Side::Lower,
            Side::Lower => Side::Upper,
        }
    }
}

/// A vertex id in the unified id space of a [`BipartiteGraph`].
///
/// Upper vertices occupy `0..n_upper`, lower vertices `n_upper..n`. The
/// mapping between a `Vertex` and a side-local index is owned by the graph
/// (see [`BipartiteGraph::upper`], [`BipartiteGraph::side`]); a bare
/// `Vertex` is only meaningful relative to the graph that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Vertex(pub u32);

impl Vertex {
    /// Raw index into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected edge; indexes flat per-edge arrays
/// (weights, removal flags).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index into per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected, edge-weighted bipartite graph `G(V=(U,L), E)` in CSR
/// form.
///
/// The structure is immutable once built (use [`crate::GraphBuilder`]);
/// algorithms that "remove" vertices or edges do so with their own flat
/// liveness arrays indexed by [`Vertex`]/[`EdgeId`], which keeps the hot
/// peeling loops allocation-free.
///
/// Neighbor lists are sorted by neighbor id, so membership tests can use
/// binary search and iteration order is deterministic.
#[derive(Clone)]
pub struct BipartiteGraph {
    n_upper: u32,
    n_lower: u32,
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbor lists, length `2m`.
    neighbors: Vec<Vertex>,
    /// Edge id parallel to `neighbors`, length `2m`.
    edge_ids: Vec<EdgeId>,
    /// Endpoints per edge id: `(upper, lower)`, length `m`.
    endpoints: Vec<(Vertex, Vertex)>,
    /// Weight per edge id, length `m`.
    weights: Vec<Weight>,
}

impl BipartiteGraph {
    /// Assembles a graph from raw parts. Used by [`crate::GraphBuilder`];
    /// callers must uphold the CSR invariants (sorted rows, consistent
    /// `edge_ids`, endpoints stored as `(upper, lower)`).
    pub(crate) fn from_parts(
        n_upper: u32,
        n_lower: u32,
        offsets: Vec<u32>,
        neighbors: Vec<Vertex>,
        edge_ids: Vec<EdgeId>,
        endpoints: Vec<(Vertex, Vertex)>,
        weights: Vec<Weight>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), (n_upper + n_lower) as usize + 1);
        debug_assert_eq!(neighbors.len(), edge_ids.len());
        debug_assert_eq!(endpoints.len(), weights.len());
        debug_assert_eq!(neighbors.len(), 2 * endpoints.len());
        BipartiteGraph {
            n_upper,
            n_lower,
            offsets,
            neighbors,
            edge_ids,
            endpoints,
            weights,
        }
    }

    /// Number of vertices in the upper layer `U(G)`.
    #[inline]
    pub fn n_upper(&self) -> usize {
        self.n_upper as usize
    }

    /// Number of vertices in the lower layer `L(G)`.
    #[inline]
    pub fn n_lower(&self) -> usize {
        self.n_lower as usize
    }

    /// Total number of vertices `n = |U| + |L|`.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        (self.n_upper + self.n_lower) as usize
    }

    /// Number of edges `m`. This is `size(G)` in the paper.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The `i`-th upper vertex.
    ///
    /// # Panics
    /// If `i >= n_upper()`.
    #[inline]
    pub fn upper(&self, i: usize) -> Vertex {
        assert!(i < self.n_upper(), "upper index {i} out of range");
        Vertex(i as u32)
    }

    /// The `j`-th lower vertex.
    ///
    /// # Panics
    /// If `j >= n_lower()`.
    #[inline]
    pub fn lower(&self, j: usize) -> Vertex {
        assert!(j < self.n_lower(), "lower index {j} out of range");
        Vertex(self.n_upper + j as u32)
    }

    /// Which layer `v` belongs to.
    #[inline]
    pub fn side(&self, v: Vertex) -> Side {
        if v.0 < self.n_upper {
            Side::Upper
        } else {
            Side::Lower
        }
    }

    /// `true` iff `v` is in the upper layer.
    #[inline]
    pub fn is_upper(&self, v: Vertex) -> bool {
        v.0 < self.n_upper
    }

    /// Side-local index of `v` (its position within its own layer).
    #[inline]
    pub fn local_index(&self, v: Vertex) -> usize {
        if self.is_upper(v) {
            v.index()
        } else {
            (v.0 - self.n_upper) as usize
        }
    }

    /// Iterator over all vertices, upper layer first.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = Vertex> + '_ {
        (0..self.n_upper + self.n_lower).map(Vertex)
    }

    /// Iterator over upper-layer vertices.
    pub fn upper_vertices(&self) -> impl ExactSizeIterator<Item = Vertex> + '_ {
        (0..self.n_upper).map(Vertex)
    }

    /// Iterator over lower-layer vertices.
    pub fn lower_vertices(&self) -> impl ExactSizeIterator<Item = Vertex> + '_ {
        (self.n_upper..self.n_upper + self.n_lower).map(Vertex)
    }

    /// Iterator over edge ids `0..m`.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.endpoints.len() as u32).map(EdgeId)
    }

    /// Degree of `v` in `G` — `deg(v, G)` in the paper.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbors of `v`, sorted by vertex id — `N(v, G)` in the paper.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Edge ids incident to `v`, parallel to [`Self::neighbors`].
    #[inline]
    pub fn incident_edges(&self, v: Vertex) -> &[EdgeId] {
        let i = v.index();
        &self.edge_ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate `(neighbor, edge_id)` pairs for `v`.
    #[inline]
    pub fn neighbors_with_edges(
        &self,
        v: Vertex,
    ) -> impl ExactSizeIterator<Item = (Vertex, EdgeId)> + '_ {
        let i = v.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.neighbors[range.clone()] // contract-ok: Range clone is a stack copy
            .iter()
            .copied()
            .zip(self.edge_ids[range].iter().copied())
    }

    /// Endpoints of edge `e` as `(upper, lower)`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (Vertex, Vertex) {
        self.endpoints[e.index()]
    }

    /// Weight of edge `e` — `w(e)` in the paper.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.weights[e.index()]
    }

    /// All edge weights, indexed by [`EdgeId`].
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Given edge `e` and one endpoint `v`, the other endpoint.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: Vertex) -> Vertex {
        let (u, l) = self.endpoints[e.index()];
        if u == v {
            l
        } else {
            debug_assert_eq!(l, v, "vertex {v:?} is not an endpoint of {e:?}");
            u
        }
    }

    /// Looks up the edge between `a` and `b`, if present (binary search on
    /// the shorter adjacency list).
    pub fn find_edge(&self, a: Vertex, b: Vertex) -> Option<EdgeId> {
        let (probe, target) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let nbrs = self.neighbors(probe);
        let pos = nbrs.binary_search(&target).ok()?;
        Some(self.incident_edges(probe)[pos])
    }

    /// `true` iff an edge `(a, b)` exists.
    #[inline]
    pub fn has_edge(&self, a: Vertex, b: Vertex) -> bool {
        self.find_edge(a, b).is_some()
    }

    /// Maximum degree over the given layer. `max_degree(Side::Upper)` is
    /// `α_max` in the paper; `max_degree(Side::Lower)` is `β_max`.
    pub fn max_degree(&self, side: Side) -> usize {
        let it: Box<dyn Iterator<Item = Vertex>> = match side {
            Side::Upper => Box::new(self.upper_vertices()),
            Side::Lower => Box::new(self.lower_vertices()),
        };
        it.map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum edge weight of the whole graph — `f(G)` in Definition 4.
    /// Returns `None` for an empty edge set.
    pub fn min_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().min_by(|a, b| a.total_cmp(b))
    }

    /// Returns a copy of the graph with every edge weight replaced by
    /// `f(edge_id, (upper, lower), old_weight)`. Structure (ids, adjacency
    /// order) is preserved, so subgraphs and indexes built against `self`
    /// remain id-compatible with the result.
    ///
    /// # Panics
    /// If `f` returns NaN for any edge.
    pub fn reweighted<F>(&self, mut f: F) -> BipartiteGraph
    where
        F: FnMut(EdgeId, (Vertex, Vertex), Weight) -> Weight,
    {
        let mut g = self.clone();
        for (i, w) in g.weights.iter_mut().enumerate() {
            let e = EdgeId(i as u32);
            let new = f(e, self.endpoints[i], *w);
            assert!(!new.is_nan(), "reweighted produced NaN for {e:?}");
            *w = new;
        }
        g
    }

    /// A human-readable one-line summary (useful in examples and logs).
    pub fn summary(&self) -> String {
        format!(
            "BipartiteGraph {{ |U|={}, |L|={}, |E|={} }}",
            self.n_upper,
            self.n_lower,
            self.n_edges()
        )
    }
}

impl fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BipartiteGraph")
            .field("n_upper", &self.n_upper)
            .field("n_lower", &self.n_lower)
            .field("n_edges", &self.n_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> BipartiteGraph {
        // u0-{l0,l1}, u1-{l1,l2}, weights 1..4
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 1, 3.0);
        b.add_edge(1, 2, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn sizes() {
        let g = toy();
        assert_eq!(g.n_upper(), 2);
        assert_eq!(g.n_lower(), 3);
        assert_eq!(g.n_vertices(), 5);
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn sides_and_indices() {
        let g = toy();
        let u1 = g.upper(1);
        let l2 = g.lower(2);
        assert_eq!(g.side(u1), Side::Upper);
        assert_eq!(g.side(l2), Side::Lower);
        assert_eq!(g.local_index(u1), 1);
        assert_eq!(g.local_index(l2), 2);
        assert!(g.is_upper(u1));
        assert!(!g.is_upper(l2));
    }

    #[test]
    #[should_panic(expected = "upper index")]
    fn upper_out_of_range_panics() {
        toy().upper(2);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = toy();
        assert_eq!(g.degree(g.upper(0)), 2);
        assert_eq!(g.degree(g.lower(1)), 2);
        assert_eq!(g.neighbors(g.upper(0)), &[g.lower(0), g.lower(1)]);
        let l1_nbrs = g.neighbors(g.lower(1));
        assert_eq!(l1_nbrs, &[g.upper(0), g.upper(1)]);
    }

    #[test]
    fn edge_lookup_and_weights() {
        let g = toy();
        let e = g.find_edge(g.upper(1), g.lower(2)).unwrap();
        assert_eq!(g.weight(e), 4.0);
        assert_eq!(g.endpoints(e), (g.upper(1), g.lower(2)));
        assert_eq!(g.other_endpoint(e, g.upper(1)), g.lower(2));
        assert_eq!(g.other_endpoint(e, g.lower(2)), g.upper(1));
        assert!(g.has_edge(g.upper(0), g.lower(1)));
        assert!(!g.has_edge(g.upper(0), g.lower(2)));
        // symmetric argument order
        assert_eq!(g.find_edge(g.lower(2), g.upper(1)), Some(e));
    }

    #[test]
    fn max_degree_and_min_weight() {
        let g = toy();
        assert_eq!(g.max_degree(Side::Upper), 2);
        assert_eq!(g.max_degree(Side::Lower), 2);
        assert_eq!(g.min_weight(), Some(1.0));
    }

    #[test]
    fn neighbors_with_edges_agree() {
        let g = toy();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            let es = g.incident_edges(v);
            assert_eq!(ns.len(), es.len());
            for (i, (n, e)) in g.neighbors_with_edges(v).enumerate() {
                assert_eq!(n, ns[i]);
                assert_eq!(e, es[i]);
                assert_eq!(g.other_endpoint(e, v), n);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.min_weight(), None);
        assert_eq!(g.max_degree(Side::Upper), 0);
    }
}
