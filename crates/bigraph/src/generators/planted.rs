//! Planted-community bipartite generator.
//!
//! The effectiveness experiments (Fig. 6, Fig. 7, Table II of the paper)
//! need graphs with ground-truth communities: groups of users and items
//! that are densely interconnected, embedded in sparse background noise.
//! This generator plants `k` bipartite blocks and records the assignment,
//! so tests can check that community search recovers them.

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::graph::{BipartiteGraph, Vertex};
use rand::Rng;

/// Configuration for [`planted_communities`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of planted blocks.
    pub n_blocks: usize,
    /// Upper vertices per block.
    pub block_upper: usize,
    /// Lower vertices per block.
    pub block_lower: usize,
    /// Probability of an edge inside a block.
    pub p_in: f64,
    /// Background upper vertices not in any block.
    pub noise_upper: usize,
    /// Background lower vertices not in any block.
    pub noise_lower: usize,
    /// Probability of an edge between any cross-block or noise pair.
    pub p_out: f64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            n_blocks: 4,
            block_upper: 20,
            block_lower: 15,
            p_in: 0.6,
            noise_upper: 40,
            noise_lower: 30,
            p_out: 0.01,
        }
    }
}

/// Result of [`planted_communities`]: the graph plus ground truth.
#[derive(Debug, Clone)]
pub struct PlantedGraph {
    /// The generated graph (unit weights).
    pub graph: BipartiteGraph,
    /// Block id per upper vertex index; `None` for noise vertices.
    pub upper_block: Vec<Option<usize>>,
    /// Block id per lower vertex index; `None` for noise vertices.
    pub lower_block: Vec<Option<usize>>,
}

impl PlantedGraph {
    /// Block id of a vertex, if it belongs to a planted block.
    pub fn block_of(&self, v: Vertex) -> Option<usize> {
        if self.graph.is_upper(v) {
            self.upper_block[self.graph.local_index(v)]
        } else {
            self.lower_block[self.graph.local_index(v)]
        }
    }
}

/// Generates a graph with `cfg.n_blocks` planted dense bipartite blocks
/// plus uniform background noise. All weights are 1.0.
pub fn planted_communities<R: Rng>(cfg: &PlantedConfig, rng: &mut R) -> PlantedGraph {
    assert!(cfg.n_blocks > 0, "need at least one block");
    assert!(
        (0.0..=1.0).contains(&cfg.p_in) && (0.0..=1.0).contains(&cfg.p_out),
        "probabilities must be in [0,1]"
    );
    let n_upper = cfg.n_blocks * cfg.block_upper + cfg.noise_upper;
    let n_lower = cfg.n_blocks * cfg.block_lower + cfg.noise_lower;
    assert!(n_upper > 0 && n_lower > 0, "layers must be nonempty");

    let mut upper_block = vec![None; n_upper];
    let mut lower_block = vec![None; n_lower];
    for blk in 0..cfg.n_blocks {
        for i in 0..cfg.block_upper {
            upper_block[blk * cfg.block_upper + i] = Some(blk);
        }
        for j in 0..cfg.block_lower {
            lower_block[blk * cfg.block_lower + j] = Some(blk);
        }
    }

    let mut b = GraphBuilder::with_policy(DuplicatePolicy::Error);
    b.ensure_upper(n_upper - 1);
    b.ensure_lower(n_lower - 1);
    for (u, &ub) in upper_block.iter().enumerate() {
        for (l, &lb) in lower_block.iter().enumerate() {
            let same_block = match (ub, lb) {
                (Some(a), Some(c)) => a == c,
                _ => false,
            };
            let p = if same_block { cfg.p_in } else { cfg.p_out };
            if rng.gen_bool(p) {
                b.add_edge(u, l, 1.0);
            }
        }
    }
    PlantedGraph {
        graph: b.build().expect("planted generator emits each pair once"),
        upper_block,
        lower_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocks_are_denser_than_background() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = PlantedConfig::default();
        let pg = planted_communities(&cfg, &mut rng);
        let g = &pg.graph;

        // Measure in-block vs out-of-block edge fractions.
        let mut in_block = 0usize;
        let mut out_block = 0usize;
        for e in g.edge_ids() {
            let (u, l) = g.endpoints(e);
            match (pg.block_of(u), pg.block_of(l)) {
                (Some(a), Some(b)) if a == b => in_block += 1,
                _ => out_block += 1,
            }
        }
        let in_pairs = cfg.n_blocks * cfg.block_upper * cfg.block_lower;
        let total_pairs = g.n_upper() * g.n_lower();
        let in_density = in_block as f64 / in_pairs as f64;
        let out_density = out_block as f64 / (total_pairs - in_pairs) as f64;
        assert!(
            in_density > 20.0 * out_density,
            "in {in_density} out {out_density}"
        );
    }

    #[test]
    fn ground_truth_shapes() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = PlantedConfig {
            n_blocks: 3,
            block_upper: 5,
            block_lower: 4,
            noise_upper: 7,
            noise_lower: 2,
            ..Default::default()
        };
        let pg = planted_communities(&cfg, &mut rng);
        assert_eq!(pg.graph.n_upper(), 3 * 5 + 7);
        assert_eq!(pg.graph.n_lower(), 3 * 4 + 2);
        assert_eq!(pg.upper_block.iter().filter(|b| b.is_some()).count(), 15);
        assert_eq!(pg.lower_block.iter().filter(|b| b.is_none()).count(), 2);
        // block_of agrees with the arrays.
        let v = pg.graph.upper(6); // second block (indices 5..10)
        assert_eq!(pg.block_of(v), Some(1));
    }

    #[test]
    fn zero_noise_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = PlantedConfig {
            p_out: 0.0,
            p_in: 1.0,
            ..Default::default()
        };
        let pg = planted_communities(&cfg, &mut rng);
        // All edges are in-block; each block is a complete biclique.
        let expected = cfg.n_blocks * cfg.block_upper * cfg.block_lower;
        assert_eq!(pg.graph.n_edges(), expected);
    }
}
