//! Synthetic bipartite graph generators.
//!
//! The paper evaluates on 11 KONECT datasets that cannot be redistributed
//! here; `datasets::catalog` builds laptop-scale analogues out of these
//! generators (see DESIGN.md §3 for the substitution argument). The
//! generators are deterministic given an [`rand::Rng`] seed.
//!
//! All generators produce weight `1.0` on every edge; apply a model from
//! [`crate::weights`] afterwards to obtain a weighted graph.

mod chung_lu;
mod planted;
mod uniform;

pub use chung_lu::{chung_lu_bipartite, power_law_degrees, ChungLuConfig};
pub use planted::{planted_communities, PlantedConfig, PlantedGraph};
pub use uniform::{complete_biclique, random_bipartite};
