//! Uniform (Erdős–Rényi style) bipartite generators and bicliques.

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::graph::BipartiteGraph;
use rand::Rng;
use std::collections::HashSet;

/// Samples a bipartite graph with `n_upper × n_lower` possible edges and
/// exactly `min(m, n_upper·n_lower)` distinct edges chosen uniformly at
/// random. Every edge has weight 1.0.
///
/// Rejection sampling is used while the target density is below 50%;
/// above that the complement is sampled instead, so the generator stays
/// linear-ish even for near-complete graphs.
pub fn random_bipartite<R: Rng>(
    n_upper: usize,
    n_lower: usize,
    m: usize,
    rng: &mut R,
) -> BipartiteGraph {
    assert!(n_upper > 0 && n_lower > 0, "layers must be nonempty");
    let total = n_upper
        .checked_mul(n_lower)
        .expect("n_upper * n_lower overflows usize");
    let m = m.min(total);
    let mut b = GraphBuilder::with_capacity(n_upper, n_lower, m);
    b.ensure_upper(n_upper - 1);
    b.ensure_lower(n_lower - 1);

    if m * 2 <= total {
        let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
        while chosen.len() < m {
            let u = rng.gen_range(0..n_upper) as u32;
            let l = rng.gen_range(0..n_lower) as u32;
            if chosen.insert((u, l)) {
                b.add_edge(u as usize, l as usize, 1.0);
            }
        }
    } else {
        // Dense: choose the complement.
        let holes = total - m;
        let mut excluded: HashSet<(u32, u32)> = HashSet::with_capacity(holes);
        while excluded.len() < holes {
            let u = rng.gen_range(0..n_upper) as u32;
            let l = rng.gen_range(0..n_lower) as u32;
            excluded.insert((u, l));
        }
        for u in 0..n_upper {
            for l in 0..n_lower {
                if !excluded.contains(&(u as u32, l as u32)) {
                    b.add_edge(u, l, 1.0);
                }
            }
        }
    }
    b.build().expect("uniform generator produces no duplicates")
}

/// The complete bipartite graph `K_{a,b}` with unit weights.
pub fn complete_biclique(a: usize, b: usize) -> BipartiteGraph {
    assert!(a > 0 && b > 0, "layers must be nonempty");
    let mut builder = GraphBuilder::with_policy(DuplicatePolicy::Error);
    for u in 0..a {
        for l in 0..b {
            builder.add_edge(u, l, 1.0);
        }
    }
    builder.build().expect("biclique has no duplicates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_bipartite(50, 40, 300, &mut rng);
        assert_eq!(g.n_edges(), 300);
        assert_eq!(g.n_upper(), 50);
        assert_eq!(g.n_lower(), 40);
    }

    #[test]
    fn clamps_to_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_bipartite(5, 4, 10_000, &mut rng);
        assert_eq!(g.n_edges(), 20);
    }

    #[test]
    fn dense_path_hits_target() {
        let mut rng = StdRng::seed_from_u64(3);
        // 90% density exercises the complement-sampling branch.
        let g = random_bipartite(20, 20, 360, &mut rng);
        assert_eq!(g.n_edges(), 360);
    }

    #[test]
    fn deterministic_for_seed() {
        let g1 = random_bipartite(30, 30, 200, &mut StdRng::seed_from_u64(7));
        let g2 = random_bipartite(30, 30, 200, &mut StdRng::seed_from_u64(7));
        for e in g1.edge_ids() {
            assert_eq!(g1.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    fn biclique_degrees() {
        let g = complete_biclique(3, 5);
        assert_eq!(g.n_edges(), 15);
        for u in g.upper_vertices() {
            assert_eq!(g.degree(u), 5);
        }
        for l in g.lower_vertices() {
            assert_eq!(g.degree(l), 3);
        }
    }
}
