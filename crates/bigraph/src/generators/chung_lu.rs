//! Chung–Lu style bipartite generator with power-law degree sequences.
//!
//! Real KONECT bipartite graphs (Table I of the paper) have heavily skewed
//! degree distributions — e.g. `Lastfm` has 992 upper vertices with
//! α_max = 55,559 while `DBLP` is near-uniform. The Chung–Lu model
//! reproduces a target expected-degree sequence: an edge is sampled by
//! drawing its upper endpoint with probability proportional to the upper
//! degree weights and its lower endpoint likewise, then deduplicating.

use crate::builder::GraphBuilder;
use crate::graph::BipartiteGraph;
use rand::Rng;
use std::collections::HashSet;

/// Target degree sequences for [`chung_lu_bipartite`].
#[derive(Debug, Clone)]
pub struct ChungLuConfig {
    /// Expected degrees of upper vertices (length = |U|).
    pub upper_degrees: Vec<f64>,
    /// Expected degrees of lower vertices (length = |L|).
    pub lower_degrees: Vec<f64>,
    /// Number of distinct edges to sample (after dedup the graph has
    /// *exactly* this many edges, capped by |U|·|L|).
    pub m: usize,
}

/// Draws a power-law degree sequence: `n` values with
/// `P(d) ∝ d^(-gamma)` over `d ∈ [d_min, d_max]`, via inverse-CDF
/// sampling of the continuous Pareto distribution.
pub fn power_law_degrees<R: Rng>(
    n: usize,
    gamma: f64,
    d_min: f64,
    d_max: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(gamma > 1.0, "gamma must exceed 1 for a proper power law");
    assert!(d_min > 0.0 && d_max >= d_min, "need 0 < d_min <= d_max");
    let a = 1.0 - gamma;
    let lo = d_min.powf(a);
    let hi = d_max.powf(a);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            (lo + (hi - lo) * u).powf(1.0 / a)
        })
        .collect()
}

/// Cumulative-probability table for weighted index sampling.
struct CumTable {
    cum: Vec<f64>,
}

impl CumTable {
    fn new(weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "degree weights must be finite and >= 0"
            );
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0.0, "degree weights must not all be zero");
        CumTable { cum }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("nonempty table");
        let x: f64 = rng.gen_range(0.0..total);
        self.cum.partition_point(|&c| c <= x)
    }
}

/// Generates a bipartite graph whose degree distribution follows the given
/// expected-degree sequences (Chung–Lu endpoint sampling). All weights are
/// 1.0; every vertex index in the config exists in the result even if it
/// ends up isolated.
pub fn chung_lu_bipartite<R: Rng>(cfg: &ChungLuConfig, rng: &mut R) -> BipartiteGraph {
    let n_u = cfg.upper_degrees.len();
    let n_l = cfg.lower_degrees.len();
    assert!(n_u > 0 && n_l > 0, "layers must be nonempty");
    let total = n_u.checked_mul(n_l).expect("layer product overflow");
    let m = cfg.m.min(total);

    let upper_table = CumTable::new(&cfg.upper_degrees);
    let lower_table = CumTable::new(&cfg.lower_degrees);

    let mut b = GraphBuilder::with_capacity(n_u, n_l, m);
    b.ensure_upper(n_u - 1);
    b.ensure_lower(n_l - 1);

    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    // Rejection sampling with a stall guard: highly concentrated degree
    // sequences can make the last few distinct pairs expensive, so after
    // too many consecutive rejections we fall back to uniform sampling of
    // the remaining pairs, which preserves the bulk of the distribution.
    let mut stall = 0usize;
    let stall_limit = 50 * m.max(1000);
    while chosen.len() < m && stall < stall_limit {
        let u = upper_table.sample(rng) as u32;
        let l = lower_table.sample(rng) as u32;
        if chosen.insert((u, l)) {
            b.add_edge(u as usize, l as usize, 1.0);
            stall = 0;
        } else {
            stall += 1;
        }
    }
    while chosen.len() < m {
        let u = rng.gen_range(0..n_u) as u32;
        let l = rng.gen_range(0..n_l) as u32;
        if chosen.insert((u, l)) {
            b.add_edge(u as usize, l as usize, 1.0);
        }
    }
    b.build().expect("chung-lu generator deduplicates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = power_law_degrees(10_000, 2.2, 1.0, 500.0, &mut rng);
        assert!(seq.iter().all(|&d| (1.0..=500.0).contains(&d)));
        // Heavy tail: max should be far above the mean.
        let mean = seq.iter().sum::<f64>() / seq.len() as f64;
        let max = seq.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn respects_edge_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ChungLuConfig {
            upper_degrees: power_law_degrees(200, 2.0, 1.0, 50.0, &mut rng),
            lower_degrees: power_law_degrees(300, 2.5, 1.0, 30.0, &mut rng),
            m: 2_000,
        };
        let g = chung_lu_bipartite(&cfg, &mut rng);
        assert_eq!(g.n_edges(), 2_000);
        assert_eq!(g.n_upper(), 200);
        assert_eq!(g.n_lower(), 300);
    }

    #[test]
    fn skewed_sequence_yields_skewed_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        // One huge hub + many leaves on the upper side.
        let mut upper = vec![1.0; 100];
        upper[0] = 500.0;
        let cfg = ChungLuConfig {
            upper_degrees: upper,
            lower_degrees: vec![1.0; 400],
            m: 600,
        };
        let g = chung_lu_bipartite(&cfg, &mut rng);
        let hub_deg = g.degree(g.upper(0));
        let rest_max = (1..100).map(|i| g.degree(g.upper(i))).max().unwrap();
        assert!(
            hub_deg > 5 * rest_max.max(1),
            "hub degree {hub_deg} vs rest max {rest_max}"
        );
    }

    #[test]
    fn concentrated_weights_still_terminate() {
        let mut rng = StdRng::seed_from_u64(4);
        // All the mass on a single pair forces the uniform fallback.
        let mut upper = vec![1e-9; 20];
        upper[0] = 1.0;
        let mut lower = vec![1e-9; 20];
        lower[0] = 1.0;
        let cfg = ChungLuConfig {
            upper_degrees: upper,
            lower_degrees: lower,
            m: 100,
        };
        let g = chung_lu_bipartite(&cfg, &mut rng);
        assert_eq!(g.n_edges(), 100);
    }
}
