//! One-mode (unipartite) projection of bipartite graphs.
//!
//! The paper's related-work section (§VI) discusses — and argues against —
//! solving bipartite community search by projecting onto one layer and
//! running unipartite algorithms: projection causes information loss and
//! edge explosion, and weighted bipartite graphs would need two kinds of
//! weights on the projected edges. This module implements the projection
//! (Newman-style) so that the trade-off can be demonstrated empirically
//! (see `tests/effectiveness.rs` for the edge-explosion check).

use crate::graph::{BipartiteGraph, Side, Vertex};
use crate::Weight;
use std::collections::HashMap;

/// How the weight of a projected edge `(a, b)` is derived from the
/// bipartite edges through their common neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionWeight {
    /// Number of common neighbors (co-occurrence count).
    CommonNeighbors,
    /// Newman's collaboration weighting: `Σ_w 1 / (deg(w) − 1)` over
    /// common neighbors `w` with degree ≥ 2.
    Newman,
    /// Minimum of the two bipartite edge weights, summed over common
    /// neighbors — the closest analogue of the paper's significance
    /// semantics under projection.
    MinWeightSum,
}

/// A projected unipartite graph over one layer of a bipartite graph.
///
/// Vertices are identified by their side-local indices in the source
/// layer; edges are undirected and stored once with `a < b`.
#[derive(Debug, Clone)]
pub struct Projection {
    /// The projected layer.
    pub side: Side,
    /// Number of vertices (the layer size).
    pub n: usize,
    /// Undirected weighted edges `(a, b, w)` with `a < b`, sorted.
    pub edges: Vec<(u32, u32, Weight)>,
}

impl Projection {
    /// Number of projected edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge-explosion factor relative to the bipartite original:
    /// `projected edges / m`. The paper's argument is that this is
    /// commonly ≫ 1 on real graphs.
    pub fn explosion_factor(&self, g: &BipartiteGraph) -> f64 {
        if g.n_edges() == 0 {
            return 0.0;
        }
        self.n_edges() as f64 / g.n_edges() as f64
    }
}

/// Projects `g` onto `side` with the chosen weighting. Runs in
/// `O(Σ_{w in other side} deg(w)²)` — exactly the wedge-explosion cost
/// the paper warns about.
pub fn project(g: &BipartiteGraph, side: Side, weighting: ProjectionWeight) -> Projection {
    let through: Box<dyn Iterator<Item = Vertex>> = match side {
        Side::Upper => Box::new(g.lower_vertices()),
        Side::Lower => Box::new(g.upper_vertices()),
    };
    let mut acc: HashMap<(u32, u32), Weight> = HashMap::new();
    for w in through {
        let deg = g.degree(w);
        if deg < 2 {
            continue;
        }
        let nbrs = g.neighbors(w);
        let eids = g.incident_edges(w);
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, b) = (g.local_index(nbrs[i]) as u32, g.local_index(nbrs[j]) as u32);
                let key = if a < b { (a, b) } else { (b, a) };
                let contribution = match weighting {
                    ProjectionWeight::CommonNeighbors => 1.0,
                    ProjectionWeight::Newman => 1.0 / (deg - 1) as f64,
                    ProjectionWeight::MinWeightSum => g.weight(eids[i]).min(g.weight(eids[j])),
                };
                *acc.entry(key).or_insert(0.0) += contribution;
            }
        }
    }
    let mut edges: Vec<(u32, u32, Weight)> = acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    edges.sort_unstable_by_key(|e| (e.0, e.1));
    let n = match side {
        Side::Upper => g.n_upper(),
        Side::Lower => g.n_lower(),
    };
    Projection { side, n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::complete_biclique;

    #[test]
    fn biclique_projects_to_clique() {
        let g = complete_biclique(4, 3);
        let p = project(&g, Side::Upper, ProjectionWeight::CommonNeighbors);
        // K4 on the upper side: 6 edges, each via 3 common lowers.
        assert_eq!(p.n_edges(), 6);
        assert!(p.edges.iter().all(|&(_, _, w)| w == 3.0));
        assert_eq!(p.n, 4);
    }

    #[test]
    fn newman_weights_discount_popular_items() {
        // Two users sharing a degree-2 item vs sharing a degree-3 item.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 0, 1.0); // item 0, degree 2 → weight 1/(2-1) = 1
        b.add_edge(2, 1, 1.0);
        b.add_edge(3, 1, 1.0);
        b.add_edge(4, 1, 1.0); // item 1, degree 3 → pair weight 1/2
        let g = b.build().unwrap();
        let p = project(&g, Side::Upper, ProjectionWeight::Newman);
        let w01 = p.edges.iter().find(|e| (e.0, e.1) == (0, 1)).unwrap().2;
        let w23 = p.edges.iter().find(|e| (e.0, e.1) == (2, 3)).unwrap().2;
        assert_eq!(w01, 1.0);
        assert_eq!(w23, 0.5);
    }

    #[test]
    fn min_weight_sum_tracks_significance() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0);
        b.add_edge(1, 0, 2.0);
        let g = b.build().unwrap();
        let p = project(&g, Side::Upper, ProjectionWeight::MinWeightSum);
        assert_eq!(p.edges, vec![(0, 1, 2.0)]);
    }

    #[test]
    fn edge_explosion_on_hub() {
        // One item rated by 30 users: 1 layer edge → C(30,2)=435 projected.
        let mut b = GraphBuilder::new();
        for u in 0..30 {
            b.add_edge(u, 0, 1.0);
        }
        let g = b.build().unwrap();
        let p = project(&g, Side::Upper, ProjectionWeight::CommonNeighbors);
        assert_eq!(p.n_edges(), 435);
        assert!(p.explosion_factor(&g) > 14.0);
    }

    #[test]
    fn lower_side_projection() {
        let g = complete_biclique(2, 5);
        let p = project(&g, Side::Lower, ProjectionWeight::CommonNeighbors);
        assert_eq!(p.n, 5);
        assert_eq!(p.n_edges(), 10); // K5
        assert!(p.edges.iter().all(|&(_, _, w)| w == 2.0));
    }
}
