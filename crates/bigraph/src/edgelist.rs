//! Reading and writing KONECT-style edge lists.
//!
//! The paper's datasets come from KONECT, whose bipartite format is one
//! edge per line: `upper lower [weight]`, whitespace-separated, with `%`
//! or `#` comment lines and 1-based vertex ids. This module parses that
//! format (both 0- and 1-based) and writes it back deterministically.

use crate::builder::{BuildError, DuplicatePolicy, GraphBuilder};
use crate::graph::BipartiteGraph;
use crate::Weight;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors from [`read_edgelist`].
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse { line: usize, message: String },
    /// Graph assembly failed (duplicate edge, NaN weight, overflow).
    Build(BuildError),
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "i/o error: {e}"),
            EdgeListError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            EdgeListError::Build(e) => write!(f, "build error: {e}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

impl From<BuildError> for EdgeListError {
    fn from(e: BuildError) -> Self {
        EdgeListError::Build(e)
    }
}

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Subtract 1 from every vertex id (KONECT files are 1-based).
    pub one_based: bool,
    /// Weight assigned to edges whose line has no weight column.
    pub default_weight: Weight,
    /// How to resolve duplicate `(upper, lower)` pairs.
    pub duplicates: DuplicatePolicy,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            one_based: false,
            default_weight: 1.0,
            duplicates: DuplicatePolicy::Error,
        }
    }
}

/// Parses an edge list from any reader.
///
/// Lines starting with `%` or `#` (after trimming) and blank lines are
/// skipped. Each data line is `upper lower [weight]`.
pub fn read_edgelist<R: BufRead>(
    reader: R,
    opts: &ReadOptions,
) -> Result<BipartiteGraph, EdgeListError> {
    let mut b = GraphBuilder::with_policy(opts.duplicates);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_id = |tok: Option<&str>, what: &str| -> Result<usize, EdgeListError> {
            let tok = tok.ok_or_else(|| EdgeListError::Parse {
                line: lineno + 1,
                message: format!("missing {what} column"),
            })?;
            let raw: usize = tok.parse().map_err(|_| EdgeListError::Parse {
                line: lineno + 1,
                message: format!("invalid {what} id {tok:?}"),
            })?;
            if opts.one_based {
                raw.checked_sub(1).ok_or_else(|| EdgeListError::Parse {
                    line: lineno + 1,
                    message: format!("{what} id 0 in a 1-based file"),
                })
            } else {
                Ok(raw)
            }
        };
        let u = parse_id(it.next(), "upper")?;
        let l = parse_id(it.next(), "lower")?;
        let w = match it.next() {
            Some(tok) => tok.parse::<Weight>().map_err(|_| EdgeListError::Parse {
                line: lineno + 1,
                message: format!("invalid weight {tok:?}"),
            })?,
            None => opts.default_weight,
        };
        b.add_edge(u, l, w);
    }
    Ok(b.build()?)
}

/// Reads an edge list from a file path.
pub fn read_edgelist_file<P: AsRef<Path>>(
    path: P,
    opts: &ReadOptions,
) -> Result<BipartiteGraph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edgelist(io::BufReader::new(file), opts)
}

/// Writes `g` as a 0-based `upper lower weight` TSV, one edge per line in
/// edge-id order, preceded by a `%` header comment.
pub fn write_edgelist<W: Write>(g: &BipartiteGraph, mut out: W) -> io::Result<()> {
    writeln!(
        out,
        "% bipartite edge list: |U|={} |L|={} |E|={}",
        g.n_upper(),
        g.n_lower(),
        g.n_edges()
    )?;
    for e in g.edge_ids() {
        let (u, l) = g.endpoints(e);
        writeln!(
            out,
            "{}\t{}\t{}",
            g.local_index(u),
            g.local_index(l),
            g.weight(e)
        )?;
    }
    Ok(())
}

/// Writes `g` to a file path via [`write_edgelist`].
pub fn write_edgelist_file<P: AsRef<Path>>(g: &BipartiteGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edgelist(g, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic() {
        let data = "% comment\n0 0 2.5\n0 1 1.0\n1 1\n";
        let g = read_edgelist(data.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.n_upper(), 2);
        assert_eq!(g.n_lower(), 2);
        let e = g.find_edge(g.upper(1), g.lower(1)).unwrap();
        assert_eq!(g.weight(e), 1.0); // default
    }

    #[test]
    fn parses_one_based() {
        let data = "1 1 3\n2 1 4\n";
        let opts = ReadOptions {
            one_based: true,
            ..Default::default()
        };
        let g = read_edgelist(data.as_bytes(), &opts).unwrap();
        assert_eq!(g.n_upper(), 2);
        assert_eq!(g.n_lower(), 1);
    }

    #[test]
    fn rejects_zero_in_one_based() {
        let data = "0 1 3\n";
        let opts = ReadOptions {
            one_based: true,
            ..Default::default()
        };
        let err = read_edgelist(data.as_bytes(), &opts).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edgelist("0 x 1\n".as_bytes(), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }));
        let err = read_edgelist("0 1 abc\n".as_bytes(), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }));
        let err = read_edgelist("0\n".as_bytes(), &ReadOptions::default()).unwrap_err();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let data = "# hash comment\n\n% percent comment\n0 0 1\n";
        let g = read_edgelist(data.as_bytes(), &ReadOptions::default()).unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn roundtrip() {
        let data = "0 0 2.5\n0 1 1\n1 1 7\n3 2 4.25\n";
        let g = read_edgelist(data.as_bytes(), &ReadOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_edgelist(&g, &mut buf).unwrap();
        let g2 = read_edgelist(buf.as_slice(), &ReadOptions::default()).unwrap();
        assert_eq!(g.n_edges(), g2.n_edges());
        assert_eq!(g.n_upper(), g2.n_upper());
        assert_eq!(g.n_lower(), g2.n_lower());
        for e in g.edge_ids() {
            let (u, l) = g.endpoints(e);
            let e2 = g2.find_edge(u, l).expect("edge survives roundtrip");
            assert_eq!(g.weight(e), g2.weight(e2));
        }
    }

    #[test]
    fn duplicate_policy_respected() {
        let data = "0 0 1\n0 0 9\n";
        let opts = ReadOptions {
            duplicates: DuplicatePolicy::KeepMax,
            ..Default::default()
        };
        let g = read_edgelist(data.as_bytes(), &opts).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.weight(crate::EdgeId(0)), 9.0);
    }
}
