//! Edge-induced subgraphs and connected components.
//!
//! Query results in the paper ((α,β)-communities, significant
//! (α,β)-communities) are subgraphs of `G` identified by their edge set.
//! [`Subgraph`] borrows the parent graph and owns a sorted edge-id list,
//! which makes equality testing, set operations and statistics cheap
//! without copying adjacency.

use crate::graph::{BipartiteGraph, EdgeId, Vertex};
use crate::Weight;
use std::collections::{HashMap, VecDeque};

/// A subgraph of a [`BipartiteGraph`] identified by a set of edges.
///
/// The vertex set is implied: every endpoint of a retained edge. This is
/// exactly how the paper's algorithms treat communities (they are formed
/// by adding/removing edges; vertices disappear when their degree drops to
/// zero).
#[derive(Clone, Debug)]
pub struct Subgraph<'g> {
    graph: &'g BipartiteGraph,
    /// Sorted, deduplicated edge ids.
    edges: Vec<EdgeId>,
}

impl<'g> Subgraph<'g> {
    /// Creates a subgraph from an arbitrary edge-id list (sorted and
    /// deduplicated internally).
    pub fn from_edges(graph: &'g BipartiteGraph, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        debug_assert!(edges.last().is_none_or(|e| e.index() < graph.n_edges()));
        Subgraph { graph, edges }
    }

    /// The whole graph as a subgraph.
    pub fn full(graph: &'g BipartiteGraph) -> Self {
        Subgraph {
            graph,
            edges: graph.edge_ids().collect(),
        }
    }

    /// An empty subgraph.
    pub fn empty(graph: &'g BipartiteGraph) -> Self {
        Subgraph {
            graph,
            edges: Vec::new(),
        }
    }

    /// The parent graph.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// Sorted edge ids.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// `size(·)` in the paper: the number of edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the subgraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// `true` iff `v` is an endpoint of some retained edge.
    pub fn contains_vertex(&self, v: Vertex) -> bool {
        self.graph
            .incident_edges(v)
            .iter()
            .any(|&e| self.contains_edge(e))
    }

    /// Vertices with at least one retained edge, deduplicated and sorted.
    pub fn vertices(&self) -> Vec<Vertex> {
        let mut vs: Vec<Vertex> = self
            .edges
            .iter()
            .flat_map(|&e| {
                let (u, l) = self.graph.endpoints(e);
                [u, l]
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// `(upper vertices, lower vertices)` of the subgraph, each sorted.
    pub fn layer_vertices(&self) -> (Vec<Vertex>, Vec<Vertex>) {
        let vs = self.vertices();
        let split = vs.partition_point(|&v| self.graph.is_upper(v));
        let (u, l) = vs.split_at(split);
        (u.to_vec(), l.to_vec())
    }

    /// Degrees of all member vertices within the subgraph.
    pub fn degrees(&self) -> HashMap<Vertex, u32> {
        let mut d: HashMap<Vertex, u32> = HashMap::new();
        for &e in &self.edges {
            let (u, l) = self.graph.endpoints(e);
            *d.entry(u).or_insert(0) += 1;
            *d.entry(l).or_insert(0) += 1;
        }
        d
    }

    /// Degree of `v` inside the subgraph.
    pub fn degree(&self, v: Vertex) -> usize {
        self.graph
            .incident_edges(v)
            .iter()
            .filter(|&&e| self.contains_edge(e))
            .count()
    }

    /// Minimum edge weight — `f(·)` in Definition 4. `None` if empty.
    pub fn min_weight(&self) -> Option<Weight> {
        self.edges
            .iter()
            .map(|&e| self.graph.weight(e))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum edge weight. `None` if empty.
    pub fn max_weight(&self) -> Option<Weight> {
        self.edges
            .iter()
            .map(|&e| self.graph.weight(e))
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Mean edge weight. `None` if empty.
    pub fn mean_weight(&self) -> Option<Weight> {
        if self.edges.is_empty() {
            return None;
        }
        let sum: f64 = self.edges.iter().map(|&e| self.graph.weight(e)).sum();
        Some(sum / self.edges.len() as f64)
    }

    /// `true` iff every upper vertex has degree ≥ `alpha` and every lower
    /// vertex degree ≥ `beta` (the cohesiveness constraint, Def. 5(2)).
    pub fn satisfies_degrees(&self, alpha: usize, beta: usize) -> bool {
        self.degrees().into_iter().all(|(v, d)| {
            let need = if self.graph.is_upper(v) { alpha } else { beta };
            d as usize >= need
        })
    }

    /// `true` iff the subgraph is connected (and nonempty).
    pub fn is_connected(&self) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        let (u0, _) = self.graph.endpoints(self.edges[0]);
        let comp = self.component_of(u0);
        comp.size() == self.size()
    }

    /// The connected component (as a subgraph of `self`) containing `v`.
    /// Empty if `v` has no retained incident edge.
    pub fn component_of(&self, v: Vertex) -> Subgraph<'g> {
        let mut seen_edges: Vec<EdgeId> = Vec::new();
        let mut visited: HashMap<Vertex, ()> = HashMap::new();
        let mut queue = VecDeque::new();
        if !self.contains_vertex(v) {
            return Subgraph::empty(self.graph);
        }
        visited.insert(v, ());
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            for (nbr, e) in self.graph.neighbors_with_edges(x) {
                if !self.contains_edge(e) {
                    continue;
                }
                // Record each edge once (from its upper endpoint).
                if self.graph.is_upper(x) {
                    seen_edges.push(e);
                }
                if visited.insert(nbr, ()).is_none() {
                    queue.push_back(nbr);
                }
            }
        }
        Subgraph::from_edges(self.graph, seen_edges)
    }

    /// All connected components, each as a subgraph, in discovery order.
    pub fn components(&self) -> Vec<Subgraph<'g>> {
        let mut remaining: Vec<EdgeId> = self.edges.clone();
        let mut out = Vec::new();
        while let Some(&e) = remaining.first() {
            let (u, _) = self.graph.endpoints(e);
            let sub = Subgraph {
                graph: self.graph,
                edges: remaining.clone(),
            };
            let comp = sub.component_of(u);
            remaining.retain(|id| comp.edges.binary_search(id).is_err());
            out.push(comp);
        }
        out
    }

    /// Restricts to edges whose weight is ≥ `threshold`.
    pub fn filter_min_weight(&self, threshold: Weight) -> Subgraph<'g> {
        let edges = self
            .edges
            .iter()
            .copied()
            .filter(|&e| self.graph.weight(e) >= threshold)
            .collect();
        Subgraph {
            graph: self.graph,
            edges,
        }
    }

    /// Iteratively removes vertices violating the (α,β) degree constraint
    /// until a fixpoint — the core of this subgraph. May be empty.
    ///
    /// This is the generic peeling kernel reused by the feasibility oracle
    /// and by SCS-Expand's candidate validation.
    pub fn peel_to_core(&self, alpha: usize, beta: usize) -> Subgraph<'g> {
        let mut alive: HashMap<EdgeId, ()> = self.edges.iter().map(|&e| (e, ())).collect();
        let mut deg = self.degrees();
        let mut queue: VecDeque<Vertex> = deg
            .iter()
            .filter(|(v, d)| {
                let need = if self.graph.is_upper(**v) {
                    alpha
                } else {
                    beta
                };
                (**d as usize) < need
            })
            .map(|(v, _)| *v)
            .collect();
        let mut dead: HashMap<Vertex, ()> = HashMap::new();
        while let Some(v) = queue.pop_front() {
            if dead.contains_key(&v) {
                continue;
            }
            dead.insert(v, ());
            for (nbr, e) in self.graph.neighbors_with_edges(v) {
                if alive.remove(&e).is_none() {
                    continue;
                }
                let d = deg.get_mut(&nbr).expect("endpoint of live edge has degree");
                *d -= 1;
                let need = if self.graph.is_upper(nbr) {
                    alpha
                } else {
                    beta
                };
                if (*d as usize) < need && !dead.contains_key(&nbr) {
                    queue.push_back(nbr);
                }
            }
        }
        Subgraph::from_edges(self.graph, alive.into_keys().collect())
    }

    /// Set-equality of edge sets (the parent graphs must be the same
    /// object for this to be meaningful).
    pub fn same_edges(&self, other: &Subgraph<'_>) -> bool {
        self.edges == other.edges
    }
}

impl PartialEq for Subgraph<'_> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.graph, other.graph) && self.edges == other.edges
    }
}
impl Eq for Subgraph<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_components() -> BipartiteGraph {
        // Component A: u0,u1 x l0,l1 (biclique); component B: u2-l2.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 0, 3.0);
        b.add_edge(1, 1, 4.0);
        b.add_edge(2, 2, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn full_and_empty() {
        let g = two_components();
        let full = Subgraph::full(&g);
        assert_eq!(full.size(), 5);
        assert!(!full.is_connected());
        let empty = Subgraph::empty(&g);
        assert!(empty.is_empty());
        assert!(!empty.is_connected());
        assert_eq!(empty.min_weight(), None);
    }

    #[test]
    fn component_extraction() {
        let g = two_components();
        let full = Subgraph::full(&g);
        let a = full.component_of(g.upper(0));
        assert_eq!(a.size(), 4);
        assert!(a.is_connected());
        assert!(a.contains_vertex(g.upper(1)));
        assert!(!a.contains_vertex(g.upper(2)));
        let b = full.component_of(g.upper(2));
        assert_eq!(b.size(), 1);
        let comps = full.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].size() + comps[1].size(), 5);
    }

    #[test]
    fn component_from_lower_vertex() {
        let g = two_components();
        let full = Subgraph::full(&g);
        let a = full.component_of(g.lower(1));
        assert_eq!(a.size(), 4);
    }

    #[test]
    fn degrees_and_constraints() {
        let g = two_components();
        let full = Subgraph::full(&g);
        let a = full.component_of(g.upper(0));
        assert_eq!(a.degree(g.upper(0)), 2);
        assert!(a.satisfies_degrees(2, 2));
        assert!(!full.satisfies_degrees(2, 2)); // u2/l2 have degree 1
        let d = a.degrees();
        assert_eq!(d[&g.lower(0)], 2);
    }

    #[test]
    fn weight_stats() {
        let g = two_components();
        let full = Subgraph::full(&g);
        assert_eq!(full.min_weight(), Some(1.0));
        assert_eq!(full.mean_weight(), Some(3.0));
        let filtered = full.filter_min_weight(3.0);
        assert_eq!(filtered.size(), 3);
        assert_eq!(filtered.min_weight(), Some(3.0));
    }

    #[test]
    fn peel_to_core_removes_pendant() {
        let g = two_components();
        let full = Subgraph::full(&g);
        let core = full.peel_to_core(2, 2);
        // Only the 2x2 biclique survives.
        assert_eq!(core.size(), 4);
        assert!(core.satisfies_degrees(2, 2));
        let too_strict = full.peel_to_core(3, 3);
        assert!(too_strict.is_empty());
    }

    #[test]
    fn peel_cascades() {
        // Path u0-l0, u1-l0, u1-l1: (1,2)-peel drops l1 (degree 1 < 2)
        // but u1 survives with degree 1 ≥ α=1, leaving the 2-edge star
        // around l0.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        let g = b.build().unwrap();
        let core = Subgraph::full(&g).peel_to_core(1, 2);
        assert_eq!(core.size(), 2);
        assert!(!core.contains_vertex(g.lower(1)));

        // (2,2) kills everything: u0 has degree 1 < 2, cascade empties it.
        let core22 = Subgraph::full(&g).peel_to_core(2, 2);
        assert!(core22.is_empty());
    }

    #[test]
    fn layer_vertices_split() {
        let g = two_components();
        let full = Subgraph::full(&g);
        let (us, ls) = full.layer_vertices();
        assert_eq!(us.len(), 3);
        assert_eq!(ls.len(), 3);
        assert!(us.iter().all(|&v| g.is_upper(v)));
        assert!(ls.iter().all(|&v| !g.is_upper(v)));
    }
}
