//! Validated construction of [`BipartiteGraph`]s.

use crate::graph::{BipartiteGraph, EdgeId, Vertex};
use crate::Weight;
use std::collections::HashMap;
use std::fmt;

/// What to do when the same `(upper, lower)` pair is added twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Reject the build with [`BuildError::DuplicateEdge`] (default).
    #[default]
    Error,
    /// Keep the first weight seen.
    KeepFirst,
    /// Keep the maximum weight.
    KeepMax,
    /// Sum the weights (useful for purchase-count style weights).
    Sum,
}

/// Errors produced by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The same `(upper, lower)` pair was added twice under
    /// [`DuplicatePolicy::Error`].
    DuplicateEdge { upper: usize, lower: usize },
    /// A weight was NaN, which would break total ordering of weights.
    NanWeight { upper: usize, lower: usize },
    /// More than `u32::MAX` vertices or edges.
    TooLarge(&'static str),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateEdge { upper, lower } => {
                write!(f, "duplicate edge (u{upper}, l{lower})")
            }
            BuildError::NanWeight { upper, lower } => {
                write!(f, "NaN weight on edge (u{upper}, l{lower})")
            }
            BuildError::TooLarge(what) => write!(f, "graph too large: {what} exceeds u32 range"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`BipartiteGraph`].
///
/// Vertices are addressed by side-local indices (`upper` 0-based in `U`,
/// `lower` 0-based in `L`); the layer sizes grow automatically to cover
/// every index mentioned. Isolated vertices can be forced into the graph
/// with [`GraphBuilder::ensure_upper`]/[`GraphBuilder::ensure_lower`]
/// (the paper assumes every vertex has an incident edge, but the builder
/// does not require it).
///
/// ```
/// use bigraph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 0, 5.0);
/// b.add_edge(0, 1, 4.0);
/// b.add_edge(1, 1, 2.0);
/// let g = b.build().unwrap();
/// assert_eq!(g.n_edges(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32, Weight)>,
    n_upper: u32,
    n_lower: u32,
    policy: DuplicatePolicy,
}

impl GraphBuilder {
    /// New empty builder with [`DuplicatePolicy::Error`].
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder with an explicit duplicate policy.
    pub fn with_policy(policy: DuplicatePolicy) -> Self {
        GraphBuilder {
            policy,
            ..Self::default()
        }
    }

    /// New builder pre-sized for `n_upper`/`n_lower` vertices and an
    /// expected number of edges.
    pub fn with_capacity(n_upper: usize, n_lower: usize, m: usize) -> Self {
        let mut b = Self::new();
        b.edges.reserve(m);
        b.n_upper = n_upper as u32;
        b.n_lower = n_lower as u32;
        b
    }

    /// Adds an undirected edge between upper vertex `upper` and lower
    /// vertex `lower` with weight `w`.
    pub fn add_edge(&mut self, upper: usize, lower: usize, w: Weight) -> &mut Self {
        self.n_upper = self.n_upper.max(upper as u32 + 1);
        self.n_lower = self.n_lower.max(lower as u32 + 1);
        self.edges.push((upper as u32, lower as u32, w));
        self
    }

    /// Ensures the upper layer contains index `upper` (possibly isolated).
    pub fn ensure_upper(&mut self, upper: usize) -> &mut Self {
        self.n_upper = self.n_upper.max(upper as u32 + 1);
        self
    }

    /// Ensures the lower layer contains index `lower` (possibly isolated).
    pub fn ensure_lower(&mut self, lower: usize) -> &mut Self {
        self.n_lower = self.n_lower.max(lower as u32 + 1);
        self
    }

    /// Number of edges added so far (before dedup).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph: deduplicates per policy, sorts adjacency
    /// lists, and assembles CSR arrays.
    pub fn build(&self) -> Result<BipartiteGraph, BuildError> {
        let n = self.n_upper as u64 + self.n_lower as u64;
        if n > u32::MAX as u64 {
            return Err(BuildError::TooLarge("vertex count"));
        }

        // Deduplicate.
        let mut dedup: HashMap<(u32, u32), Weight> = HashMap::with_capacity(self.edges.len());
        for &(u, l, w) in &self.edges {
            if w.is_nan() {
                return Err(BuildError::NanWeight {
                    upper: u as usize,
                    lower: l as usize,
                });
            }
            match dedup.entry((u, l)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => match self.policy {
                    DuplicatePolicy::Error => {
                        return Err(BuildError::DuplicateEdge {
                            upper: u as usize,
                            lower: l as usize,
                        })
                    }
                    DuplicatePolicy::KeepFirst => {}
                    DuplicatePolicy::KeepMax => {
                        if w > *e.get() {
                            e.insert(w);
                        }
                    }
                    DuplicatePolicy::Sum => {
                        *e.get_mut() += w;
                    }
                },
            }
        }

        let m = dedup.len();
        if m > u32::MAX as usize / 2 {
            return Err(BuildError::TooLarge("edge count"));
        }

        // Deterministic edge order: sort by (upper, lower).
        let mut edge_list: Vec<((u32, u32), Weight)> = dedup.into_iter().collect();
        edge_list.sort_unstable_by_key(|&((u, l), _)| (u, l));

        let n = n as usize;
        let mut degree = vec![0u32; n];
        let mut endpoints = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        for &((u, l), w) in &edge_list {
            let lv = self.n_upper + l;
            degree[u as usize] += 1;
            degree[lv as usize] += 1;
            endpoints.push((Vertex(u), Vertex(lv)));
            weights.push(w);
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![Vertex(0); 2 * m];
        let mut edge_ids = vec![EdgeId(0); 2 * m];
        for (eid, &((u, l), _)) in edge_list.iter().enumerate() {
            let lv = self.n_upper + l;
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = Vertex(lv);
            edge_ids[cu] = EdgeId(eid as u32);
            cursor[u as usize] += 1;
            let cl = cursor[lv as usize] as usize;
            neighbors[cl] = Vertex(u);
            edge_ids[cl] = EdgeId(eid as u32);
            cursor[lv as usize] += 1;
        }
        // Rows are sorted automatically: edge_list is sorted by (u, l), so
        // each upper row receives lowers in increasing order, and each
        // lower row receives uppers in increasing order.

        Ok(BipartiteGraph::from_parts(
            self.n_upper,
            self.n_lower,
            offsets,
            neighbors,
            edge_ids,
            endpoints,
            weights,
        ))
    }
}

/// Builds the running example of the paper's Figure 1 (user–movie network,
/// ratings as weights). Upper = 7 users, lower = 7 movies.
///
/// Layout (upper index — name): 0 Taylor, 1 Kane, 2 Eric, 3 Andy, 4 Emma,
/// 5 Kelly, 6 Kate. Lower: 0 X-Men, 1 Alien, 2 A.I., 3 Titanic, 4 Lover,
/// 5 Avatar, 6 Star Wars.
///
/// The exact edge set of the figure is not fully legible from the paper;
/// this reconstruction preserves the property discussed in §I: the
/// connected (3,2)-community of Eric contains Taylor and Alien, while the
/// *significant* (3,2)-community (min-weight maximised) excludes them.
pub fn figure1_example() -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    // Eric (2), Andy (3), Kane (1) rate X-Men (0), A.I. (2), Avatar (5) highly.
    for &u in &[1usize, 2, 3] {
        b.add_edge(u, 0, 4.0);
        b.add_edge(u, 2, 5.0);
        b.add_edge(u, 5, 4.0);
    }
    // Alien (1) is rated by Eric highly but poorly by Taylor; Andy/Kane skip it.
    b.add_edge(2, 1, 4.0);
    b.add_edge(0, 1, 2.0);
    // Taylor (0) has low interest: ratings of 2 on X-Men and A.I.
    b.add_edge(0, 0, 2.0);
    b.add_edge(0, 2, 2.0);
    // Right-side community: Emma (4), Kelly (5), Kate (6) on Titanic (3),
    // Lover (4), Star Wars (6).
    for &u in &[4usize, 5, 6] {
        b.add_edge(u, 3, 4.0);
        b.add_edge(u, 4, 3.0);
        b.add_edge(u, 6, 5.0);
    }
    // Kate bridges to Avatar with a mid rating.
    b.add_edge(6, 5, 2.0);
    b.build().expect("figure 1 example is well-formed")
}

/// Builds the paper's Figure 2 graph: `U = {u1..u999}`, `L = {v1..v999}`,
/// `w(u, v) = 5·u.id − v.id`.
///
/// Edges: `u1` is adjacent to every `v`; every `u` is adjacent to `v1`;
/// additionally `u2` is adjacent to `v2,v3,v4`, `u3` to `v2,v3` and `u4`
/// to `v2` (the triangular block visible in Figure 2(b)'s weights).
/// This matches the paper's counts: 2,003 edges in `G`, a 13-edge
/// (2,2)-community of `u3`, and a 4-edge significant (2,2)-community
/// `{(u3,v1),(u3,v2),(u4,v1),(u4,v2)}`.
///
/// 0-based translation: paper's `u_k` is `upper(k-1)`, `v_k` is
/// `lower(k-1)`.
pub fn figure2_example() -> BipartiteGraph {
    let w = |ui: usize, vi: usize| (5 * ui) as Weight - vi as Weight;
    let mut b = GraphBuilder::new();
    for v in 1..=999usize {
        b.add_edge(0, v - 1, w(1, v)); // u1 - v*
    }
    for u in 2..=999usize {
        b.add_edge(u - 1, 0, w(u, 1)); // u* - v1
    }
    for (u, max_v) in [(2usize, 4usize), (3, 3), (4, 2)] {
        for v in 2..=max_v {
            b.add_edge(u - 1, v - 1, w(u, v));
        }
    }
    b.build().expect("figure 2 example is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_error() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateEdge { upper: 0, lower: 0 }
        );
    }

    #[test]
    fn duplicate_keep_first() {
        let mut b = GraphBuilder::with_policy(DuplicatePolicy::KeepFirst);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.weight(crate::EdgeId(0)), 1.0);
    }

    #[test]
    fn duplicate_keep_max() {
        let mut b = GraphBuilder::with_policy(DuplicatePolicy::KeepMax);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 0, 1.5);
        let g = b.build().unwrap();
        assert_eq!(g.weight(crate::EdgeId(0)), 2.0);
    }

    #[test]
    fn duplicate_sum() {
        let mut b = GraphBuilder::with_policy(DuplicatePolicy::Sum);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.5);
        let g = b.build().unwrap();
        assert_eq!(g.weight(crate::EdgeId(0)), 3.5);
    }

    #[test]
    fn nan_rejected() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, f64::NAN);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::NanWeight { .. }
        ));
    }

    #[test]
    fn isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.ensure_upper(5);
        b.ensure_lower(3);
        let g = b.build().unwrap();
        assert_eq!(g.n_upper(), 6);
        assert_eq!(g.n_lower(), 4);
        assert_eq!(g.degree(g.upper(5)), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new();
        // Insert in scrambled order.
        b.add_edge(1, 3, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build().unwrap();
        let nbrs: Vec<usize> = g
            .neighbors(g.upper(1))
            .iter()
            .map(|&v| g.local_index(v))
            .collect();
        assert_eq!(nbrs, vec![0, 2, 3]);
    }

    #[test]
    fn figure2_counts() {
        let g = figure2_example();
        assert_eq!(g.n_upper(), 999);
        assert_eq!(g.n_lower(), 999);
        assert_eq!(g.n_edges(), 2003);
        // u1 is adjacent to all 999 lowers; v1 to all 999 uppers.
        assert_eq!(g.degree(g.upper(0)), 999);
        assert_eq!(g.degree(g.lower(0)), 999);
        // w(u3, v2) = 5*3-2 = 13
        let e = g.find_edge(g.upper(2), g.lower(1)).unwrap();
        assert_eq!(g.weight(e), 13.0);
    }

    #[test]
    fn figure1_counts() {
        let g = figure1_example();
        assert_eq!(g.n_upper(), 7);
        assert_eq!(g.n_lower(), 7);
        assert!(g.n_edges() > 10);
    }
}
