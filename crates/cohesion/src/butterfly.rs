//! Butterfly (2×2-biclique) counting.
//!
//! A butterfly is a pair of upper vertices and a pair of lower vertices
//! that are completely connected (4 edges) — the smallest non-trivial
//! cohesive motif on bipartite graphs (ref.\[47\] of the paper). The bitruss model needs the
//! *per-edge* butterfly count (support).
//!
//! The implementation enumerates wedges through the side with the
//! smaller sum of squared degrees (the "vertex priority" idea of Wang et
//! al., VLDB'19, specialized to a side choice), giving
//! `O(min(Σ_U deg², Σ_L deg²))` time.

use bigraph::{BipartiteGraph, EdgeId, Side, Vertex};

/// Per-edge butterfly counts (support), indexed by [`EdgeId`].
pub fn butterfly_support(g: &BipartiteGraph) -> Vec<u64> {
    let mut support = vec![0u64; g.n_edges()];
    if g.n_edges() == 0 {
        return support;
    }
    // Wedges are centered on `through` vertices; we iterate start
    // vertices on the other side. Work = Σ_{w ∈ through side} deg(w)².
    let sum_sq = |side: Side| -> u128 {
        let it: Box<dyn Iterator<Item = Vertex>> = match side {
            Side::Upper => Box::new(g.upper_vertices()),
            Side::Lower => Box::new(g.lower_vertices()),
        };
        it.map(|v| (g.degree(v) as u128).pow(2)).sum()
    };
    let through = if sum_sq(Side::Lower) <= sum_sq(Side::Upper) {
        Side::Lower
    } else {
        Side::Upper
    };
    let starts: Box<dyn Iterator<Item = Vertex>> = match through {
        Side::Lower => Box::new(g.upper_vertices()),
        Side::Upper => Box::new(g.lower_vertices()),
    };

    // For each start x, count same-side partners y (y > x) by the number
    // of common neighbors c = |N(x) ∩ N(y)|; the pair forms C(c,2)
    // butterflies, and each common neighbor w contributes (c−1)
    // butterflies to the edges (x,w) and (y,w).
    let mut cnt: std::collections::HashMap<Vertex, u32> = std::collections::HashMap::new();
    for x in starts {
        cnt.clear();
        for &w in g.neighbors(x) {
            for &y in g.neighbors(w) {
                if y > x {
                    *cnt.entry(y).or_insert(0) += 1;
                }
            }
        }
        for (&w, &ex) in g.neighbors(x).iter().zip(g.incident_edges(x)) {
            for (&y, &ey) in g.neighbors(w).iter().zip(g.incident_edges(w)) {
                if y > x {
                    let c = cnt[&y] as u64;
                    if c >= 2 {
                        support[ex.index()] += c - 1;
                        support[ey.index()] += c - 1;
                    }
                }
            }
        }
    }
    support
}

/// Total number of butterflies in the graph.
///
/// Each butterfly contains 4 edges and contributes 1 to each edge's
/// support, so the total is `Σ_e support(e) / 4`.
pub fn butterfly_count_total(g: &BipartiteGraph) -> u64 {
    butterfly_support(g).iter().sum::<u64>() / 4
}

/// Brute-force butterfly support for testing: O(m²) pairwise edge check.
#[doc(hidden)]
pub fn butterfly_support_brute(g: &BipartiteGraph) -> Vec<u64> {
    let mut support = vec![0u64; g.n_edges()];
    let edges: Vec<(EdgeId, Vertex, Vertex)> = g
        .edge_ids()
        .map(|e| {
            let (u, l) = g.endpoints(e);
            (e, u, l)
        })
        .collect();
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (_, u1, l1) = edges[i];
            let (_, u2, l2) = edges[j];
            if u1 == u2 || l1 == l2 {
                continue;
            }
            // The diagonal pair: butterfly iff the two cross edges exist.
            if g.has_edge(u1, l2) && g.has_edge(u2, l1) {
                // This counts each butterfly exactly twice (both diagonal
                // pairs), so add 1/2 to each of the 4 edges — accumulate
                // doubled and halve at the end.
                for (a, b) in [(u1, l1), (u2, l2), (u1, l2), (u2, l1)] {
                    let e = g.find_edge(a, b).expect("edge exists");
                    support[e.index()] += 1;
                }
            }
        }
    }
    for s in &mut support {
        *s /= 2;
    }
    support
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generators::{complete_biclique, random_bipartite};
    use bigraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_butterfly() {
        let g = complete_biclique(2, 2);
        assert_eq!(butterfly_count_total(&g), 1);
        assert_eq!(butterfly_support(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn complete_biclique_counts() {
        // K_{a,b}: C(a,2)·C(b,2) butterflies; each edge is in
        // (a-1)(b-1) of them.
        let g = complete_biclique(3, 4);
        assert_eq!(butterfly_count_total(&g), 3 * 6);
        let s = butterfly_support(&g);
        assert!(s.iter().all(|&x| x == 6));
    }

    #[test]
    fn path_has_no_butterfly() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 1, 1.0);
        let g = b.build().unwrap();
        assert_eq!(butterfly_count_total(&g), 0);
        assert!(butterfly_support(&g).iter().all(|&x| x == 0));
    }

    #[test]
    fn matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(900);
        for trial in 0..5 {
            let g = random_bipartite(10 + trial, 12, 45 + 5 * trial, &mut rng);
            assert_eq!(
                butterfly_support(&g),
                butterfly_support_brute(&g),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn skewed_graph_matches_brute_force() {
        // Force the side-choice branch: a hub on the upper side.
        let mut b = GraphBuilder::new();
        for l in 0..12 {
            b.add_edge(0, l, 1.0);
        }
        for u in 1..5 {
            for l in 0..4 {
                b.add_edge(u, l, 1.0);
            }
        }
        let g = b.build().unwrap();
        assert_eq!(butterfly_support(&g), butterfly_support_brute(&g));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(butterfly_count_total(&g), 0);
    }
}
