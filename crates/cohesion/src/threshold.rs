//! The `C4★` threshold model of the paper's effectiveness study: the
//! community induced by items whose *average* rating clears a threshold,
//! with no structural cohesiveness requirement. It serves as the
//! weight-only strawman in Fig. 6 / Table II (its members can be
//! loosely connected users who rated a single popular item).

use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex, Weight};

/// The threshold community of `q`: take every lower vertex whose mean
/// incident edge weight is ≥ `threshold`, induce the subgraph on those
/// lower vertices together with all their incident edges, and return the
/// connected component of `q` in it.
///
/// Matches the paper's `C4★` ("the induced subgraph of all the movies
/// with average ratings at least 4") with `threshold = 4`.
pub fn threshold_community<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    threshold: Weight,
) -> Subgraph<'g> {
    let mut qualified = vec![false; g.n_lower()];
    for l in g.lower_vertices() {
        let deg = g.degree(l);
        if deg == 0 {
            continue;
        }
        let sum: f64 = g.incident_edges(l).iter().map(|&e| g.weight(e)).sum();
        if sum / deg as f64 >= threshold {
            qualified[g.local_index(l)] = true;
        }
    }
    let edges: Vec<EdgeId> = g
        .edge_ids()
        .filter(|&e| {
            let (_, l) = g.endpoints(e);
            qualified[g.local_index(l)]
        })
        .collect();
    Subgraph::from_edges(g, edges).component_of(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    #[test]
    fn keeps_only_high_rated_items() {
        let mut b = GraphBuilder::new();
        // l0 avg 4.5 (qualified), l1 avg 2.0 (not), l2 avg 4.0 (edge case).
        b.add_edge(0, 0, 5.0);
        b.add_edge(1, 0, 4.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 1, 2.0);
        b.add_edge(1, 2, 4.0);
        let g = b.build().unwrap();
        let c = threshold_community(&g, g.upper(0), 4.0);
        assert!(c.contains_vertex(g.lower(0)));
        assert!(!c.contains_vertex(g.lower(1)));
        assert!(c.contains_vertex(g.lower(2))); // via u1
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn query_disconnected_from_qualified_items() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0); // qualified island
        b.add_edge(1, 1, 1.0); // q's only edge, unqualified item
        let g = b.build().unwrap();
        let c = threshold_community(&g, g.upper(1), 4.0);
        assert!(c.is_empty());
    }

    #[test]
    fn no_structure_requirement() {
        // A star of one-review users around a high-rated item: all kept,
        // demonstrating the "loosely connected" weakness the paper calls
        // out for C4★.
        let mut b = GraphBuilder::new();
        for u in 0..10 {
            b.add_edge(u, 0, 5.0);
        }
        let g = b.build().unwrap();
        let c = threshold_community(&g, g.upper(0), 4.0);
        assert_eq!(c.size(), 10);
        let (us, _) = c.layer_vertices();
        assert_eq!(us.len(), 10);
    }
}
