//! # cohesion — comparison cohesive-subgraph models on bipartite graphs
//!
//! The paper's effectiveness study (Fig. 6, Fig. 7, Table II) compares
//! the significant (α,β)-community model against the other cohesive
//! subgraph families on bipartite graphs. This crate implements those
//! comparators from scratch:
//!
//! * [`butterfly`] — per-edge butterfly (2×2-biclique) counting, the
//!   support notion underlying bitruss;
//! * [`bitruss`] — k-bitruss decomposition by support peeling
//!   (Zou, DASFAA'16; Wang et al., ICDE'20);
//! * [`biclique`] — maximal biclique search with per-layer size bounds
//!   (Zhang et al., BMC Bioinformatics'14);
//! * [`threshold`] — the paper's `C4★` strawman: the induced subgraph of
//!   items whose average rating clears a threshold.
//!
//! None of these consider edge weights as a cohesion criterion (bitruss
//! and biclique are purely structural; `C4★` is purely weight-based),
//! which is exactly the gap the significant (α,β)-community model fills.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

pub mod biclique;
pub mod bitruss;
pub mod butterfly;
pub mod threshold;

pub use biclique::{maximal_biclique_containing, Biclique};
pub use bitruss::{bitruss_community, bitruss_decomposition};
pub use butterfly::{butterfly_count_total, butterfly_support};
pub use threshold::threshold_community;
