//! Maximal biclique search with per-layer size thresholds.
//!
//! The paper's Table II uses "a maximal biclique containing q with at
//! least 45 vertices in each layer" as a comparator. This module finds
//! such a biclique with a bounded branch-and-bound search over the query
//! vertex's neighborhood (in the spirit of the MBEA algorithm of Zhang
//! et al., BMC Bioinformatics'14), returning the largest one found
//! within a node budget.

use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};

/// A biclique: every vertex in `upper` is adjacent to every vertex in
/// `lower`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biclique {
    /// Upper-layer members, sorted.
    pub upper: Vec<Vertex>,
    /// Lower-layer members, sorted.
    pub lower: Vec<Vertex>,
}

impl Biclique {
    /// Number of edges `|upper| · |lower|`.
    pub fn n_edges(&self) -> usize {
        self.upper.len() * self.lower.len()
    }

    /// Materializes the biclique as a [`Subgraph`] of `g`.
    ///
    /// # Panics
    /// If some claimed edge does not exist in `g` (i.e. `self` is not
    /// actually a biclique of `g`).
    pub fn to_subgraph<'g>(&self, g: &'g BipartiteGraph) -> Subgraph<'g> {
        let mut edges: Vec<EdgeId> = Vec::with_capacity(self.n_edges());
        for &u in &self.upper {
            for &l in &self.lower {
                edges.push(g.find_edge(u, l).expect("biclique edge must exist"));
            }
        }
        Subgraph::from_edges(g, edges)
    }

    /// Checks the biclique property and maximality within `g`.
    pub fn is_maximal(&self, g: &BipartiteGraph) -> bool {
        // Property: complete bipartite.
        for &u in &self.upper {
            for &l in &self.lower {
                if !g.has_edge(u, l) {
                    return false;
                }
            }
        }
        // Maximality: no vertex adjacent to the entire opposite side can
        // be added.
        let can_extend = |candidates: &[Vertex], side: &[Vertex]| {
            candidates.iter().any(|&c| {
                !side.contains(&c) && {
                    let opposite = if g.is_upper(c) {
                        &self.lower
                    } else {
                        &self.upper
                    };
                    opposite.iter().all(|&o| g.has_edge(c, o))
                }
            })
        };
        if let Some(&l0) = self.lower.first() {
            if can_extend(g.neighbors(l0), &self.upper) {
                return false;
            }
        }
        if let Some(&u0) = self.upper.first() {
            if can_extend(g.neighbors(u0), &self.lower) {
                return false;
            }
        }
        true
    }
}

/// Finds a maximal biclique containing `q` with at least `min_upper`
/// upper vertices and `min_lower` lower vertices, maximizing edge count,
/// exploring at most `budget` search nodes. Returns `None` if no
/// qualifying biclique is found within the budget.
pub fn maximal_biclique_containing(
    g: &BipartiteGraph,
    q: Vertex,
    min_upper: usize,
    min_lower: usize,
    budget: usize,
) -> Option<Biclique> {
    // Normalize: treat q as an upper vertex by swapping roles if needed.
    // A biclique containing upper q has its lower side ⊆ N(q) and its
    // upper side = common neighbors of the chosen lower side.
    let q_is_upper = g.is_upper(q);
    let (min_same, min_opp) = if q_is_upper {
        (min_upper, min_lower)
    } else {
        (min_lower, min_upper)
    };

    let mut candidates: Vec<Vertex> = g.neighbors(q).to_vec();
    // Prefer high-degree opposite vertices: they constrain the common
    // neighborhood less.
    candidates.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    struct Search<'a> {
        g: &'a BipartiteGraph,
        q: Vertex,
        min_same: usize,
        min_opp: usize,
        budget: usize,
        best: Option<(usize, Vec<Vertex>, Vec<Vertex>)>, // (edges, same side incl. q, opp side)
    }

    impl Search<'_> {
        /// `chosen`: opposite-side vertices picked so far;
        /// `common`: same-side vertices adjacent to all of `chosen`
        /// (always contains q); `rest`: opposite candidates still
        /// available.
        fn recurse(&mut self, chosen: &mut Vec<Vertex>, common: Vec<Vertex>, rest: &[Vertex]) {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            // Bound: even taking every remaining candidate cannot reach
            // the minimum opposite size.
            if chosen.len() + rest.len() < self.min_opp {
                return;
            }
            // Record a candidate solution when both minima are met.
            if chosen.len() >= self.min_opp && common.len() >= self.min_same {
                let edges = chosen.len() * common.len();
                if self.best.as_ref().is_none_or(|(b, _, _)| edges > *b) {
                    self.best = Some((edges, common.clone(), chosen.clone()));
                }
            }
            for (i, &cand) in rest.iter().enumerate() {
                // Shrink the common same-side set to cand's neighbors.
                let new_common: Vec<Vertex> = common
                    .iter()
                    .copied()
                    .filter(|&s| self.g.has_edge(s, cand))
                    .collect();
                if new_common.len() < self.min_same || !new_common.contains(&self.q) {
                    continue;
                }
                // Prune: no improvement possible if common already
                // smaller than the best density allows.
                chosen.push(cand);
                self.recurse(chosen, new_common, &rest[i + 1..]);
                chosen.pop();
                if self.budget == 0 {
                    return;
                }
            }
        }
    }

    // The same-side universe is represented lazily: the root of each
    // search branch starts from one chosen opposite vertex, whose
    // neighborhood is the initial common set — keeping the sets small
    // from the first level instead of materializing "everything".
    let mut search = Search {
        g,
        q,
        min_same,
        min_opp,
        budget,
        best: None,
    };
    for (i, &first) in candidates.iter().enumerate() {
        let common: Vec<Vertex> = g.neighbors(first).to_vec();
        debug_assert!(common.contains(&q));
        let mut chosen = vec![first];
        search.recurse(&mut chosen, common, &candidates[i + 1..]);
        if search.budget == 0 {
            break;
        }
    }

    let (_, same, opp) = search.best?;
    // Grow to maximality: add every same-side vertex adjacent to all of
    // `opp` (the search's common sets already do this), then every
    // opposite vertex adjacent to all of `same`.
    let mut same = same;
    let mut opp = opp;
    same.sort_unstable();
    same.dedup();
    if let Some(&s0) = same.first() {
        for &cand in g.neighbors(s0) {
            if !opp.contains(&cand) && same.iter().all(|&s| g.has_edge(s, cand)) {
                opp.push(cand);
            }
        }
    }
    if let Some(&o0) = opp.first() {
        for &cand in g.neighbors(o0) {
            if !same.contains(&cand) && opp.iter().all(|&o| g.has_edge(o, cand)) {
                same.push(cand);
            }
        }
    }
    same.sort_unstable();
    opp.sort_unstable();
    let (upper, lower) = if q_is_upper { (same, opp) } else { (opp, same) };
    Some(Biclique { upper, lower })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generators::complete_biclique;
    use bigraph::GraphBuilder;

    #[test]
    fn finds_whole_biclique() {
        let g = complete_biclique(4, 5);
        let b = maximal_biclique_containing(&g, g.upper(0), 2, 2, 10_000).unwrap();
        assert_eq!(b.upper.len(), 4);
        assert_eq!(b.lower.len(), 5);
        assert!(b.is_maximal(&g));
        assert_eq!(b.to_subgraph(&g).size(), 20);
    }

    #[test]
    fn respects_minimum_sizes() {
        // A 2x2 biclique: asking for 3 per side must fail.
        let g = complete_biclique(2, 2);
        assert!(maximal_biclique_containing(&g, g.upper(0), 3, 3, 10_000).is_none());
        assert!(maximal_biclique_containing(&g, g.upper(0), 2, 2, 10_000).is_some());
    }

    #[test]
    fn picks_largest_containing_q() {
        // q participates in a 2x3 and a 3x2 block; with min 2/2 the
        // richer one (by edges they tie at 6 — extend the 2x3 to 2x4).
        let mut bld = GraphBuilder::new();
        // Block A: uppers {0,1} x lowers {0,1,2,3}.
        for u in 0..2 {
            for l in 0..4 {
                bld.add_edge(u, l, 1.0);
            }
        }
        // Block B: uppers {0,2,3} x lowers {4,5}.
        for &u in &[0usize, 2, 3] {
            for l in 4..6 {
                bld.add_edge(u, l, 1.0);
            }
        }
        let g = bld.build().unwrap();
        let b = maximal_biclique_containing(&g, g.upper(0), 2, 2, 100_000).unwrap();
        assert_eq!(b.n_edges(), 8, "{b:?}"); // 2x4 block
        assert!(b.upper.contains(&g.upper(0)));
        assert!(b.is_maximal(&g));
    }

    #[test]
    fn lower_side_query() {
        let g = complete_biclique(3, 4);
        let b = maximal_biclique_containing(&g, g.lower(1), 2, 2, 10_000).unwrap();
        assert!(b.lower.contains(&g.lower(1)));
        assert_eq!(b.n_edges(), 12);
    }

    #[test]
    fn budget_zero_gives_nothing() {
        let g = complete_biclique(3, 3);
        assert!(maximal_biclique_containing(&g, g.upper(0), 1, 1, 0).is_none());
    }

    #[test]
    fn maximality_check_rejects_subsets() {
        let g = complete_biclique(3, 3);
        let sub = Biclique {
            upper: vec![g.upper(0), g.upper(1)],
            lower: vec![g.lower(0), g.lower(1)],
        };
        assert!(!sub.is_maximal(&g));
    }
}
