//! k-bitruss decomposition (Zou DASFAA'16; Wang et al. ICDE'20).
//!
//! The k-bitruss is the maximal subgraph in which every edge is contained
//! in at least `k` butterflies *within the subgraph*. The decomposition
//! assigns each edge its bitruss number `φ(e)` — the largest `k` whose
//! k-bitruss contains `e` — by support peeling, after which any
//! k-bitruss community query is a filter plus a BFS.
//!
//! In the paper's Fig. 6/Table II comparison the bitruss community of a
//! query vertex is the connected component of `q` in the `(α·β)`-bitruss.

use crate::butterfly::butterfly_support;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the bitruss number `φ(e)` of every edge.
///
/// Peeling with a lazy min-heap: repeatedly remove the edge of minimum
/// current support, assign it the running maximum support seen, and
/// decrement the support of the three other edges of every butterfly the
/// removed edge participated in.
pub fn bitruss_decomposition(g: &BipartiteGraph) -> Vec<u64> {
    let m = g.n_edges();
    let mut support = butterfly_support(g);
    let mut phi = vec![0u64; m];
    let mut alive = vec![true; m];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..m as u32)
        .map(|e| Reverse((support[e as usize], e)))
        .collect();
    let mut k = 0u64;
    while let Some(Reverse((s, e))) = heap.pop() {
        let ei = e as usize;
        if !alive[ei] || s != support[ei] {
            continue; // stale heap entry
        }
        alive[ei] = false;
        k = k.max(s);
        phi[ei] = k;
        // Decrement the supports of the other three edges of every
        // butterfly containing e = (u, v).
        let (u, v) = g.endpoints(EdgeId(e));
        let alive_edge = |alive: &[bool], a: Vertex, b: Vertex| -> Option<EdgeId> {
            g.find_edge(a, b).filter(|ee| alive[ee.index()])
        };
        // Walk partners u' of v and common lowers z of (u, u').
        for (u2, e_u2v) in g.neighbors_with_edges(v) {
            if u2 == u || !alive[e_u2v.index()] {
                continue;
            }
            for (z, e_uz) in g.neighbors_with_edges(u) {
                if z == v || !alive[e_uz.index()] {
                    continue;
                }
                let Some(e_u2z) = alive_edge(&alive, u2, z) else {
                    continue;
                };
                for other in [e_u2v, e_uz, e_u2z] {
                    let oi = other.index();
                    support[oi] = support[oi].saturating_sub(1);
                    heap.push(Reverse((support[oi], other.0)));
                }
            }
        }
    }
    phi
}

/// The k-bitruss community of `q`: the connected component of `q` in the
/// subgraph of edges with `φ(e) ≥ k`. Pass the decomposition from
/// [`bitruss_decomposition`] so repeated queries share the peel.
pub fn bitruss_community<'g>(
    g: &'g BipartiteGraph,
    phi: &[u64],
    q: Vertex,
    k: u64,
) -> Subgraph<'g> {
    let edges: Vec<EdgeId> = g.edge_ids().filter(|e| phi[e.index()] >= k).collect();
    Subgraph::from_edges(g, edges).component_of(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::butterfly_support_brute;
    use bigraph::generators::{complete_biclique, random_bipartite};
    use bigraph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference k-bitruss: iterate "recompute butterfly supports on the
    /// surviving subgraph, drop edges below k" until fixpoint.
    fn brute_k_bitruss(g: &BipartiteGraph, k: u64) -> Vec<bool> {
        let mut alive = vec![true; g.n_edges()];
        loop {
            // Rebuild the surviving subgraph and count supports on it.
            let mut b = bigraph::GraphBuilder::new();
            b.ensure_upper(g.n_upper().saturating_sub(1));
            b.ensure_lower(g.n_lower().saturating_sub(1));
            let mut kept: Vec<usize> = Vec::new();
            for e in g.edge_ids() {
                if alive[e.index()] {
                    let (u, l) = g.endpoints(e);
                    b.add_edge(g.local_index(u), g.local_index(l), 1.0);
                    kept.push(e.index());
                }
            }
            let sub = b.build().unwrap();
            let s = butterfly_support_brute(&sub);
            let mut changed = false;
            for (sub_e, &orig) in kept.iter().enumerate() {
                if s[sub_e] < k {
                    alive[orig] = false;
                    changed = true;
                }
            }
            if !changed {
                return alive;
            }
        }
    }

    #[test]
    fn biclique_phi_uniform() {
        let g = complete_biclique(3, 3);
        let phi = bitruss_decomposition(&g);
        assert!(phi.iter().all(|&x| x == 4), "{phi:?}"); // (3-1)(3-1)
    }

    #[test]
    fn pendant_edge_has_phi_zero() {
        let mut b = GraphBuilder::new();
        // 2x2 biclique plus pendant u2-l0.
        for u in 0..2 {
            for l in 0..2 {
                b.add_edge(u, l, 1.0);
            }
        }
        b.add_edge(2, 0, 1.0);
        let g = b.build().unwrap();
        let phi = bitruss_decomposition(&g);
        let pendant = g.find_edge(g.upper(2), g.lower(0)).unwrap();
        assert_eq!(phi[pendant.index()], 0);
        for e in g.edge_ids() {
            if e != pendant {
                assert_eq!(phi[e.index()], 1);
            }
        }
    }

    #[test]
    fn decomposition_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(901);
        for trial in 0..3 {
            let g = random_bipartite(8, 8, 30 + trial * 5, &mut rng);
            let phi = bitruss_decomposition(&g);
            let k_max = phi.iter().copied().max().unwrap_or(0);
            for k in 1..=k_max.min(6) {
                let brute = brute_k_bitruss(&g, k);
                for e in g.edge_ids() {
                    assert_eq!(
                        phi[e.index()] >= k,
                        brute[e.index()],
                        "k={k} {e:?} trial={trial}"
                    );
                }
            }
        }
    }

    #[test]
    fn community_is_connected_component() {
        // Two disjoint 2x2 bicliques; 1-bitruss keeps both, community
        // keeps only q's.
        let mut b = GraphBuilder::new();
        for (uo, lo) in [(0, 0), (2, 2)] {
            for du in 0..2 {
                for dl in 0..2 {
                    b.add_edge(uo + du, lo + dl, 1.0);
                }
            }
        }
        let g = b.build().unwrap();
        let phi = bitruss_decomposition(&g);
        let c = bitruss_community(&g, &phi, g.upper(0), 1);
        assert_eq!(c.size(), 4);
        assert!(!c.contains_vertex(g.upper(2)));
        let none = bitruss_community(&g, &phi, g.upper(0), 2);
        assert!(none.is_empty());
    }
}
