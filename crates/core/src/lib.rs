//! # scs — significant (α,β)-community search on weighted bipartite graphs
//!
//! A complete implementation of **"Efficient and Effective Community
//! Search on Large-scale Bipartite Graphs"** (Wang, Zhang, Lin, Zhang,
//! Qin, Zhang — ICDE 2021).
//!
//! Given a weighted bipartite graph `G`, degree constraints `α, β` and a
//! query vertex `q`, the *significant (α,β)-community* `R` is the
//! connected subgraph containing `q` in which every upper vertex has
//! degree ≥ α and every lower vertex degree ≥ β, whose minimum edge
//! weight is maximum (and which is edge-maximal at that weight). `R`
//! models a community that is both structurally cohesive and built from
//! uniformly significant interactions — high ratings, purchase counts,
//! contribution scores.
//!
//! ## Two-step query paradigm
//!
//! 1. **Retrieve `C_{α,β}(q)`** — the connected component of `q` inside
//!    the (α,β)-core — in time linear in its size, using the
//!    degeneracy-bounded index [`index::DeltaIndex`] (`O(δ·m)` build
//!    time/space, Section III-B). The basic indexes
//!    [`index::BasicIndex`] and the baselines (`Qo`, `Qv` in the
//!    [`bicore`] crate) are provided for comparison.
//! 2. **Extract `R` from `C_{α,β}(q)`** with [`query::scs_peel`]
//!    (Algorithm 4), [`query::scs_expand`] (Algorithm 5),
//!    [`query::scs_binary`], or the no-index strawman
//!    [`query::scs_baseline`].
//!
//! ## Quick start
//!
//! ```
//! use bigraph::GraphBuilder;
//! use scs::{Algorithm, CommunitySearch};
//!
//! // A tiny user–movie network: 3 users × 3 movies, star ratings.
//! let mut b = GraphBuilder::new();
//! for u in 0..3 {
//!     for l in 0..3 {
//!         let rating = if u == 2 && l == 2 { 1.0 } else { 5.0 };
//!         b.add_edge(u, l, rating);
//!     }
//! }
//! let g = b.build().unwrap();
//! let search = CommunitySearch::new(g);
//!
//! let q = search.graph().upper(0);
//! let community = search.community(q, 2, 2); // structural only
//! assert_eq!(community.size(), 9);
//!
//! let r = search.significant_community(q, 2, 2, Algorithm::Auto);
//! assert_eq!(r.min_weight(), Some(5.0)); // the 1-star edge is excluded
//! ```
//!
//! Dynamic graphs are supported through [`index::DynamicIndex`], which
//! maintains `Iδ` under edge insertions and removals.

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

pub mod index;
pub mod query;
pub mod workspace;

pub(crate) mod local;

pub use index::{BasicIndex, DeltaIndex, DynamicIndex};
pub use query::{scs_baseline, scs_binary, scs_expand, scs_peel};
pub use workspace::QueryWorkspace;

use bigraph::arena::{ArenaEdges, ResultArena};
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};
use std::fmt;
use std::sync::Arc;

/// Which second-step algorithm to run.
///
/// `Hash` so the variant can key result caches (see the `scs-service`
/// crate); for a fixed [`CommunitySearch`] every variant — including
/// [`Algorithm::Auto`], whose resolution depends only on (α, β, δ) — is a
/// pure function of the query, so caching per variant is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Pick automatically from the query parameters: expansion for small
    /// α,β (large community, small result), peeling for large α,β
    /// (small community, large result) — the rule of thumb the paper
    /// derives from Fig. 13.
    #[default]
    Auto,
    /// `SCS-Peel` (Algorithm 4).
    Peel,
    /// `SCS-Expand` (Algorithm 5) with ε = 2.
    Expand,
    /// Binary search over weight thresholds.
    Binary,
    /// Expansion over the whole connected component — no index use
    /// beyond the final validation; the paper's strawman.
    Baseline,
}

impl Algorithm {
    /// Every variant, in display order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Auto,
        Algorithm::Peel,
        Algorithm::Expand,
        Algorithm::Binary,
        Algorithm::Baseline,
    ];

    /// The CLI/stat-table name of the variant.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::Peel => "peel",
            Algorithm::Expand => "expand",
            Algorithm::Binary => "binary",
            Algorithm::Baseline => "baseline",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// High-level façade: a graph plus its degeneracy-bounded index.
#[derive(Debug, Clone)]
pub struct CommunitySearch {
    graph: BipartiteGraph,
    index: DeltaIndex,
}

impl CommunitySearch {
    /// Builds the index (`O(δ·m)`) and takes ownership of the graph.
    pub fn new(graph: BipartiteGraph) -> Self {
        let index = DeltaIndex::build(&graph);
        CommunitySearch { graph, index }
    }

    /// Builds the index and returns the façade ready for sharing across
    /// threads — the form the `scs-service` query engine consumes.
    pub fn shared(graph: BipartiteGraph) -> Arc<Self> {
        Arc::new(Self::new(graph))
    }

    /// Reassembles a façade from an already-built index, skipping the
    /// `O(δ·m)` rebuild. Used by the epoch-swap path: a
    /// [`DynamicIndex`] that has absorbed edge updates hands its parts to
    /// a fresh `CommunitySearch` which is then installed into a running
    /// service.
    ///
    /// The caller must pass the index that was built for (or maintained
    /// along with) exactly this graph; queries silently misbehave
    /// otherwise, just as with a hand-rolled stale index.
    pub fn from_parts(graph: BipartiteGraph, index: DeltaIndex) -> Self {
        CommunitySearch { graph, index }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The underlying index.
    pub fn index(&self) -> &DeltaIndex {
        &self.index
    }

    /// The degeneracy δ of the graph.
    pub fn delta(&self) -> usize {
        self.index.delta()
    }

    /// Resolves [`Algorithm::Auto`] from the query parameters.
    fn resolve_algorithm(&self, alpha: usize, beta: usize, algorithm: Algorithm) -> Algorithm {
        match algorithm {
            Algorithm::Auto => {
                // Expansion wins when the community is much larger than
                // the result (small constraints); peeling wins when they
                // are close (large constraints). The measured Fig. 13
                // crossover sits around a quarter of the degeneracy.
                if alpha.min(beta) * 4 >= self.delta().max(1) {
                    Algorithm::Peel
                } else {
                    Algorithm::Expand
                }
            }
            other => other,
        }
    }

    /// Step 1: the (α,β)-community of `q` (`Qopt`, optimal time).
    pub fn community(&self, q: Vertex, alpha: usize, beta: usize) -> Subgraph<'_> {
        self.index.query_community(&self.graph, q, alpha, beta)
    }

    /// [`Self::community`] with caller-provided reusable scratch.
    pub fn community_in(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        ws: &mut QueryWorkspace,
    ) -> Subgraph<'_> {
        self.index
            .query_community_in(&self.graph, q, alpha, beta, ws.base_mut())
    }

    /// Steps 1+2: the significant (α,β)-community of `q`.
    ///
    /// Thin wrapper over [`Self::significant_community_in`] with a
    /// throwaway workspace; callers issuing many queries (the serving
    /// layer, benchmark loops) should hold a [`QueryWorkspace`] instead.
    pub fn significant_community(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        algorithm: Algorithm,
    ) -> Subgraph<'_> {
        self.significant_community_in(q, alpha, beta, algorithm, &mut QueryWorkspace::new())
    }

    /// [`Self::significant_community`] with caller-provided reusable
    /// scratch: after warm-up the only allocation left is the returned
    /// result subgraph.
    pub fn significant_community_in(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
    ) -> Subgraph<'_> {
        let mut out = Vec::new();
        self.significant_community_into(q, alpha, beta, algorithm, ws, &mut out);
        Subgraph::from_edges(&self.graph, out)
    }

    /// Batch entry point: answers every `(q, α, β)` query in
    /// `queries`, in order, through **one** workspace.
    ///
    /// The epoch-stamped scratch inside `ws` is what makes the batch
    /// cheaper than a loop over [`Self::significant_community`]: buffer
    /// clears between adjacent queries are O(1) epoch bumps, never
    /// graph-sized writes, and every buffer stays resident at the size
    /// of the largest query served so far. The serving layer's batch
    /// path (`scs-service`) sits directly on this kernel.
    pub fn significant_communities_in(
        &self,
        queries: &[(Vertex, usize, usize)],
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
    ) -> Vec<Subgraph<'_>> {
        let mut outs = Vec::new();
        self.significant_communities_into(queries, algorithm, ws, &mut outs);
        outs.into_iter()
            .map(|edges| Subgraph::from_edges(&self.graph, edges))
            .collect()
    }

    /// [`Self::significant_communities_in`] writing into caller-owned
    /// result buffers: `outs` is resized to `queries.len()` and
    /// `outs[i]` receives the sorted edge ids of query `i`'s community.
    /// With a warm `ws` and warm `outs`, a repeated batch performs zero
    /// heap allocations.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn significant_communities_into(
        &self,
        queries: &[(Vertex, usize, usize)],
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
        outs: &mut Vec<Vec<EdgeId>>,
    ) {
        outs.resize_with(queries.len(), Vec::new); // contract-ok: capacity-0 construction; Vec::new never touches the heap
        for (&(q, alpha, beta), out) in queries.iter().zip(outs.iter_mut()) {
            self.significant_community_into(q, alpha, beta, algorithm, ws, out);
        }
    }

    /// [`Self::significant_community_into`] storing the result in
    /// arena storage: the community's sorted edge ids are copied into a
    /// slab of `arena` and the returned [`ArenaEdges`] handle pins
    /// them. With a warm `ws` **and** a warm arena (a free slab — every
    /// result of a retired generation dropped), a repeated query
    /// performs zero heap allocations *including the result itself* —
    /// the contract the serving layer's leader path is built on.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn significant_community_arena(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
        arena: &mut ResultArena,
    ) -> ArenaEdges {
        let mut out = std::mem::take(&mut ws.result);
        self.significant_community_into(q, alpha, beta, algorithm, ws, &mut out);
        let stored = arena.store(&out);
        ws.result = out;
        stored
    }

    /// Batch form of [`Self::significant_community_arena`]: answers
    /// every query through one workspace and one arena, pushing one
    /// handle per query into `outs` (cleared first; previous handles
    /// are released, returning their slab space to circulation once
    /// nothing else pins it). Warm, a repeated batch is allocation-free
    /// end to end.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn significant_communities_arena(
        &self,
        queries: &[(Vertex, usize, usize)],
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
        arena: &mut ResultArena,
        outs: &mut Vec<ArenaEdges>,
    ) {
        outs.clear();
        outs.reserve(queries.len()); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        for &(q, alpha, beta) in queries {
            let stored = self.significant_community_arena(q, alpha, beta, algorithm, ws, arena);
            outs.push(stored); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        }
    }

    /// Fully allocation-free query: `out` is cleared and receives the
    /// sorted edge ids of the significant (α,β)-community. With a warm
    /// `ws` and a warm `out`, a repeated query performs zero heap
    /// allocations.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn significant_community_into(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        algorithm: Algorithm,
        ws: &mut QueryWorkspace,
        out: &mut Vec<EdgeId>,
    ) {
        let algorithm = self.resolve_algorithm(alpha, beta, algorithm);
        if algorithm == Algorithm::Baseline {
            query::scs_baseline_into(&self.graph, q, alpha, beta, ws, out);
            return;
        }
        ws.retrieve_community(|base, community| {
            self.index
                .query_community_into(&self.graph, q, alpha, beta, base, community);
        });
        let community = ws.take_community();
        match algorithm {
            Algorithm::Auto | Algorithm::Baseline => unreachable!("resolved above"),
            Algorithm::Peel => {
                query::scs_peel_into(&self.graph, &community, q, alpha, beta, ws, out)
            }
            Algorithm::Expand => query::scs_expand_into(
                &self.graph,
                &community,
                q,
                alpha,
                beta,
                query::ExpandOptions::default(),
                ws,
                out,
            ),
            Algorithm::Binary => {
                query::scs_binary_into(&self.graph, &community, q, alpha, beta, ws, out)
            }
        }
        ws.restore_community(community);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;

    #[test]
    fn facade_runs_every_algorithm() {
        let search = CommunitySearch::new(figure2_example());
        let q = search.graph().upper(2);
        let mut results = Vec::new();
        for algo in [
            Algorithm::Auto,
            Algorithm::Peel,
            Algorithm::Expand,
            Algorithm::Binary,
            Algorithm::Baseline,
        ] {
            results.push(search.significant_community(q, 2, 2, algo));
        }
        for r in &results {
            assert_eq!(r.size(), 4);
            assert_eq!(r.min_weight(), Some(13.0));
        }
    }

    #[test]
    fn batch_matches_per_query_results() {
        let search = CommunitySearch::new(figure2_example());
        let g = search.graph();
        let queries: Vec<(Vertex, usize, usize)> = (0..g.n_upper())
            .flat_map(|i| [(g.upper(i), 2, 2), (g.upper(i), 1, 1)])
            .collect();
        for algo in Algorithm::ALL {
            let mut ws = QueryWorkspace::new();
            let batched = search.significant_communities_in(&queries, algo, &mut ws);
            assert_eq!(batched.len(), queries.len());
            for (&(q, a, b), got) in queries.iter().zip(&batched) {
                let solo = search.significant_community(q, a, b, algo);
                assert_eq!(got.edges(), solo.edges(), "q={q:?} α={a} β={b} {algo}");
            }
            // A warm workspace answers the same batch without growing.
            let bytes = ws.heap_bytes();
            let again = search.significant_communities_in(&queries, algo, &mut ws);
            assert_eq!(ws.heap_bytes(), bytes, "warm batch must not grow scratch");
            for (x, y) in batched.iter().zip(&again) {
                assert_eq!(x.edges(), y.edges());
            }
        }
    }

    #[test]
    fn batch_into_reuses_result_buffers() {
        let search = CommunitySearch::new(figure2_example());
        let q = search.graph().upper(2);
        let mut ws = QueryWorkspace::new();
        let mut outs = Vec::new();
        // A longer batch first, then a shorter one: `outs` must shrink.
        search.significant_communities_into(
            &[(q, 2, 2), (q, 1, 1), (q, 3, 3)],
            Algorithm::Peel,
            &mut ws,
            &mut outs,
        );
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].len(), 4);
        search.significant_communities_into(&[(q, 2, 2)], Algorithm::Peel, &mut ws, &mut outs);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].len(), 4);
        // Empty batch: no results, no panic.
        search.significant_communities_into(&[], Algorithm::Auto, &mut ws, &mut outs);
        assert!(outs.is_empty());
    }

    #[test]
    fn arena_results_match_vec_results() {
        let search = CommunitySearch::new(figure2_example());
        let g = search.graph();
        let queries: Vec<(Vertex, usize, usize)> = (0..g.n_upper())
            .flat_map(|i| [(g.upper(i), 2, 2), (g.upper(i), 1, 1)])
            .collect();
        let mut ws = QueryWorkspace::new();
        let mut arena = ResultArena::new();
        let mut handles = Vec::new();
        for algo in Algorithm::ALL {
            search.significant_communities_arena(&queries, algo, &mut ws, &mut arena, &mut handles);
            assert_eq!(handles.len(), queries.len());
            for (&(q, a, b), stored) in queries.iter().zip(&handles) {
                let solo = search.significant_community(q, a, b, algo);
                assert_eq!(
                    stored.as_slice(),
                    solo.edges(),
                    "q={q:?} α={a} β={b} {algo}"
                );
                assert!(stored.pinned());
            }
        }
        // Single-query form agrees too, sharing the same arena.
        let q = g.upper(2);
        let one = search.significant_community_arena(q, 2, 2, Algorithm::Peel, &mut ws, &mut arena);
        assert_eq!(
            one.as_slice(),
            search
                .significant_community(q, 2, 2, Algorithm::Peel)
                .edges()
        );
    }

    #[test]
    fn facade_community_step() {
        let search = CommunitySearch::new(figure2_example());
        assert_eq!(search.delta(), 3);
        let c = search.community(search.graph().upper(2), 2, 2);
        assert_eq!(c.size(), 13);
    }
}
