//! Per-thread reusable scratch for the full two-step query pipeline.
//!
//! A [`QueryWorkspace`] bundles everything a significant-community query
//! needs besides the graph and the index: the graph-sized epoch-stamped
//! buffers of [`bigraph::workspace::Workspace`] (used by index retrieval
//! and the online baselines) and the community-sized local scratch of the
//! second-step kernels (the re-indexed [`LocalGraph`], liveness sets,
//! degree arrays, sort orders, the expansion heap and component
//! tracker). Everything grows monotonically to the largest query served,
//! so a warm workspace answers an unbounded query stream with zero
//! further heap allocations.
//!
//! One workspace serves one thread: the serving layer gives each worker
//! its own, reused across queries and across index epoch swaps.
//!
//! # Example
//!
//! ```
//! use bigraph::builder::figure2_example;
//! use scs::{Algorithm, CommunitySearch, QueryWorkspace};
//!
//! let search = CommunitySearch::new(figure2_example());
//! let mut ws = QueryWorkspace::new();
//! let q = search.graph().upper(2);
//! // Same answers as `significant_community`, no per-query scratch.
//! let r = search.significant_community_in(q, 2, 2, Algorithm::Auto, &mut ws);
//! assert_eq!(r.min_weight(), Some(13.0));
//! assert!(ws.heap_bytes() > 0);
//! ```

use crate::local::LocalGraph;
use crate::query::expand::HeapEdge;
use bigraph::unionfind::ComponentTracker;
use bigraph::workspace::{EdgeSet, VertexSet, Workspace};
use bigraph::{BipartiteGraph, EdgeId};

/// Community-sized scratch of the second-step kernels. Field roles are
/// by convention, like [`Workspace`]'s; every kernel documents what it
/// clobbers.
#[derive(Debug, Default)]
pub(crate) struct LocalScratch {
    /// Live local edges of the kernel in progress (peel liveness,
    /// expansion's inserted set, …).
    pub alive: EdgeSet,
    /// Secondary local edge set (expansion's `G*` while `alive` backs a
    /// validation peel).
    pub added: EdgeSet,
    /// Local BFS/DFS discovery marks.
    pub visited: VertexSet,
    /// Live local degrees.
    pub deg: Vec<u32>,
    /// Weight-sorted local edge order.
    pub order: Vec<u32>,
    /// Candidate edge subsets (binary-search probes, expansion's `C*`).
    pub subset: Vec<u32>,
    /// Edges removed in the current peel iteration (for rollback).
    pub removed: Vec<u32>,
    /// Cascade worklist of local vertex ids.
    pub cascade: Vec<u32>,
    /// Traversal stack of local vertex ids.
    pub stack: Vec<u32>,
    /// Local result edges.
    pub out: Vec<u32>,
    /// Distinct weights (binary search over thresholds).
    pub weights: Vec<f64>,
    /// Backing store of the expansion max-heap.
    pub heap: Vec<HeapEdge>,
    /// Union-find component tracker for the expansion.
    pub tracker: ComponentTracker,
}

impl LocalScratch {
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.alive.heap_bytes()
            + self.added.heap_bytes()
            + self.visited.heap_bytes()
            + self.deg.capacity() * size_of::<u32>()
            + self.order.capacity() * size_of::<u32>()
            + self.subset.capacity() * size_of::<u32>()
            + self.removed.capacity() * size_of::<u32>()
            + self.cascade.capacity() * size_of::<u32>()
            + self.stack.capacity() * size_of::<u32>()
            + self.out.capacity() * size_of::<u32>()
            + self.weights.capacity() * size_of::<f64>()
            + self.heap.capacity() * size_of::<HeapEdge>()
    }
}

/// Reusable scratch memory for the whole query path (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Graph-sized scratch: index retrieval, online peels, baselines.
    pub(crate) base: Workspace,
    /// The re-indexed community, rebuilt in place per query.
    pub(crate) local: LocalGraph,
    /// Step-1 result: the community's global edge ids.
    pub(crate) community: Vec<EdgeId>,
    /// Staging buffer for arena-bound results (the kernel writes here,
    /// then the edges are copied into a `ResultArena` slab).
    pub(crate) result: Vec<EdgeId>,
    /// Community-sized kernel scratch.
    pub(crate) scratch: LocalScratch,
    acquisitions: u64,
    grows: u64,
}

impl QueryWorkspace {
    /// An empty workspace; every buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the community-sized scratch can serve a local graph with
    /// `n` vertices and `m` edges. Grow-only and counted, like
    /// [`Workspace::fit_sizes`].
    pub(crate) fn fit_local(&mut self, n: usize, m: usize) {
        use bigraph::workspace::grow_vec as grow;
        let s = &mut self.scratch;
        let mut grows = 0u64;
        grows += s.alive.ensure(m) as u64;
        grows += s.added.ensure(m) as u64;
        grows += s.visited.ensure(n) as u64;
        grows += grow(&mut s.deg, n) as u64;
        grows += grow(&mut s.order, m) as u64;
        grows += grow(&mut s.subset, m) as u64;
        grows += grow(&mut s.removed, m) as u64;
        grows += grow(&mut s.cascade, n) as u64;
        grows += grow(&mut s.stack, n) as u64;
        grows += grow(&mut s.out, m) as u64;
        grows += grow(&mut s.weights, m) as u64;
        grows += grow(&mut s.heap, m) as u64;
        self.acquisitions += 12;
        self.grows += grows;
    }

    /// The graph-sized base workspace (index retrieval, baselines).
    pub(crate) fn base_mut(&mut self) -> &mut Workspace {
        &mut self.base
    }

    /// Runs step 1 through `f`, which receives the base workspace and
    /// the community output buffer as disjoint borrows.
    pub(crate) fn retrieve_community(&mut self, f: impl FnOnce(&mut Workspace, &mut Vec<EdgeId>)) {
        f(&mut self.base, &mut self.community)
    }

    /// Temporarily moves the community buffer out (so a second-step
    /// kernel can borrow the rest of the workspace mutably); pair with
    /// [`Self::restore_community`].
    pub(crate) fn take_community(&mut self) -> Vec<EdgeId> {
        std::mem::take(&mut self.community)
    }

    /// Returns the buffer taken by [`Self::take_community`].
    pub(crate) fn restore_community(&mut self, community: Vec<EdgeId>) {
        self.community = community;
    }

    /// Counts the distinct upper- and lower-side endpoints of `edges`
    /// without allocating, using the workspace's `visited` set (which
    /// is clobbered). This is how the serving layer sizes a summary of
    /// an arena-stored result — the allocation-free replacement for
    /// materialising the vertex list.
    pub fn layer_counts(&mut self, g: &BipartiteGraph, edges: &[EdgeId]) -> (usize, usize) {
        self.base.visited.ensure(g.n_vertices());
        self.base.visited.clear();
        let (mut n_upper, mut n_lower) = (0, 0);
        for &e in edges {
            let (u, l) = g.endpoints(e);
            // contract-ok: warm workspace scratch; growth is cold
            if self.base.visited.insert(u) {
                n_upper += 1;
            }
            // contract-ok: warm workspace scratch; growth is cold
            if self.base.visited.insert(l) {
                n_lower += 1;
            }
        }
        (n_upper, n_lower)
    }

    /// Resident heap bytes across every buffer — what it costs to keep
    /// this workspace warm. Reported by the service layer next to its
    /// cache statistics.
    pub fn heap_bytes(&self) -> usize {
        self.base.heap_bytes()
            + self.local.heap_bytes()
            + self.community.capacity() * std::mem::size_of::<EdgeId>()
            + self.result.capacity() * std::mem::size_of::<EdgeId>()
            + self.scratch.heap_bytes()
    }

    /// Scratch acquisitions served from already-resident memory — the
    /// buffer set-ups a fresh-buffer implementation would have
    /// performed with an allocation each, counted once per buffer per
    /// kernel fit (see
    /// [`bigraph::workspace::WorkspaceStats::allocations_avoided`]).
    pub fn allocations_avoided(&self) -> u64 {
        self.base.allocations_avoided() + (self.acquisitions - self.grows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_local_grows_once_then_reuses() {
        let mut ws = QueryWorkspace::new();
        ws.fit_local(10, 20);
        let bytes = ws.heap_bytes();
        assert!(bytes > 0);
        let avoided_before = ws.allocations_avoided();
        ws.fit_local(10, 20);
        ws.fit_local(4, 4);
        assert_eq!(ws.heap_bytes(), bytes, "warm fits must not grow");
        assert!(ws.allocations_avoided() >= avoided_before + 24);
        ws.fit_local(100, 300);
        assert!(ws.heap_bytes() > bytes, "bigger community grows the pool");
    }

    #[test]
    fn layer_counts_match_subgraph_vertices() {
        let g = bigraph::builder::figure2_example();
        let mut ws = QueryWorkspace::new();
        let full = bigraph::Subgraph::full(&g);
        let (us, ls) = full.layer_vertices();
        assert_eq!(ws.layer_counts(&g, full.edges()), (us.len(), ls.len()));
        // A sub-list counts only its own endpoints; repeated calls
        // reuse the same visited set.
        let some = &full.edges()[..3];
        let sub = bigraph::Subgraph::from_edges(&g, some.to_vec());
        let (su, sl) = sub.layer_vertices();
        assert_eq!(ws.layer_counts(&g, some), (su.len(), sl.len()));
        assert_eq!(ws.layer_counts(&g, &[]), (0, 0));
    }
}
