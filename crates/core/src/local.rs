//! Compact local re-indexing for the SCS query algorithms.
//!
//! The whole point of the paper's two-step paradigm is that the second
//! step (peeling / expansion) works on `C_{α,β}(q)`, which is usually far
//! smaller than `G`. To make that real, the [`LocalGraph`] re-indexes the
//! community's vertices and edges into dense local ids so every per-query
//! array is `O(size(C))`, not `O(n + m)`.
//!
//! A `LocalGraph` is itself reusable scratch: [`LocalGraph::rebuild`]
//! refills the structure in place from a new edge set, so a warm local
//! graph (held inside [`crate::QueryWorkspace`]) re-indexes community
//! after community without touching the allocator.

use bigraph::workspace::{EdgeSet, VertexSet};
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex, Weight};

/// A community re-indexed with dense local vertex/edge ids.
///
/// Local vertex ids preserve the global order, and since global ids place
/// the upper layer first, local ids `0..n_upper_local` are exactly the
/// upper vertices.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalGraph {
    /// Global vertex per local id (sorted ascending).
    verts: Vec<Vertex>,
    /// Number of upper-layer vertices (they occupy local ids `0..this`).
    n_upper_local: usize,
    /// Global edge id per local edge.
    edge_globals: Vec<EdgeId>,
    /// Local endpoints per local edge: `(upper_local, lower_local)`.
    edge_ends: Vec<(u32, u32)>,
    /// Weight per local edge.
    weights: Vec<Weight>,
    /// CSR adjacency: `adj[starts[v]..starts[v+1]]` = `(nbr_local, edge_local)`.
    starts: Vec<u32>,
    adj: Vec<(u32, u32)>,
    /// Build-time scratch (degree counts, CSR cursors), kept for reuse.
    build_degree: Vec<u32>,
    build_cursor: Vec<u32>,
}

impl LocalGraph {
    /// Builds a fresh local graph from a community subgraph.
    /// `O(size(C) log size(C))`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new(sub: &Subgraph<'_>) -> Self {
        let mut lg = LocalGraph::default();
        lg.rebuild(sub.graph(), sub.edges());
        lg
    }

    /// Refills the local graph in place from `edges` of `g`, reusing
    /// every buffer — allocation-free once the buffers have grown to the
    /// largest community seen. `O(size(C) log size(C))`.
    pub fn rebuild(&mut self, g: &BipartiteGraph, edges: &[EdgeId]) {
        self.verts.clear();
        for &e in edges {
            let (u, l) = g.endpoints(e);
            self.verts.push(u); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            self.verts.push(l); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        }
        self.verts.sort_unstable();
        self.verts.dedup();
        self.n_upper_local = self.verts.partition_point(|&v| g.is_upper(v));

        let m = edges.len();
        let nv = self.verts.len();
        self.edge_globals.clear();
        self.edge_ends.clear();
        self.weights.clear();
        self.build_degree.clear();
        self.build_degree.resize(nv, 0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        for &e in edges {
            let (u, l) = g.endpoints(e);
            let lu = self
                .verts
                .binary_search(&u)
                .expect("endpoint of community edge") as u32;
            let ll = self
                .verts
                .binary_search(&l)
                .expect("endpoint of community edge") as u32;
            self.edge_globals.push(e); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            self.edge_ends.push((lu, ll)); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            self.weights.push(g.weight(e)); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            self.build_degree[lu as usize] += 1;
            self.build_degree[ll as usize] += 1;
        }
        self.starts.clear();
        let mut acc = 0u32;
        self.starts.push(0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        for &d in &self.build_degree {
            acc += d;
            self.starts.push(acc); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        }
        self.build_cursor.clear();
        self.build_cursor.extend_from_slice(&self.starts[..nv]);
        self.adj.clear();
        self.adj.resize(2 * m, (0u32, 0u32)); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        for (le, &(lu, ll)) in self.edge_ends.iter().enumerate() {
            self.adj[self.build_cursor[lu as usize] as usize] = (ll, le as u32);
            self.build_cursor[lu as usize] += 1;
            self.adj[self.build_cursor[ll as usize] as usize] = (lu, le as u32);
            self.build_cursor[ll as usize] += 1;
        }
    }

    /// Number of local vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of local edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edge_globals.len()
    }

    /// Number of upper-layer vertices (local ids `0..n_upper_local`).
    #[inline]
    pub fn n_upper_local(&self) -> usize {
        self.n_upper_local
    }

    /// `true` iff local vertex `lv` is in the upper layer.
    #[inline]
    pub fn is_upper_local(&self, lv: u32) -> bool {
        (lv as usize) < self.n_upper_local
    }

    /// Degree requirement of local vertex `lv` under constraints (α,β).
    #[inline]
    pub fn need(&self, lv: u32, alpha: u32, beta: u32) -> u32 {
        if self.is_upper_local(lv) {
            alpha
        } else {
            beta
        }
    }

    /// Local id of global vertex `v`, if present.
    #[inline]
    pub fn local_of(&self, v: Vertex) -> Option<u32> {
        self.verts.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Global vertex of local id `lv`.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn global_of(&self, lv: u32) -> Vertex {
        self.verts[lv as usize]
    }

    /// Global edge id of local edge `le`.
    #[inline]
    pub fn edge_global(&self, le: u32) -> EdgeId {
        self.edge_globals[le as usize]
    }

    /// Local endpoints `(upper_local, lower_local)` of local edge `le`.
    #[inline]
    pub fn ends(&self, le: u32) -> (u32, u32) {
        self.edge_ends[le as usize]
    }

    /// Weight of local edge `le`.
    #[inline]
    pub fn weight(&self, le: u32) -> Weight {
        self.weights[le as usize]
    }

    /// `(min, max)` edge weight, or `None` when the edge set is empty —
    /// the all-equal-weights fast-path test without a [`Subgraph`].
    pub fn weight_bounds(&self) -> Option<(Weight, Weight)> {
        let mut it = self.weights.iter().copied();
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for w in it {
            if w.total_cmp(&lo).is_lt() {
                lo = w;
            }
            if w.total_cmp(&hi).is_gt() {
                hi = w;
            }
        }
        Some((lo, hi))
    }

    /// Adjacency of local vertex `lv`: `(neighbor_local, edge_local)`.
    #[inline]
    pub fn adjacency(&self, lv: u32) -> &[(u32, u32)] {
        let i = lv as usize;
        &self.adj[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Full local degree of `lv`.
    #[inline]
    pub fn full_degree(&self, lv: u32) -> u32 {
        self.starts[lv as usize + 1] - self.starts[lv as usize]
    }

    /// Fills `out` with all local edge ids sorted by weight (ascending
    /// when `asc`, else descending); ties broken by edge id for
    /// determinism.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn edges_by_weight_into(&self, asc: bool, out: &mut Vec<u32>) {
        out.clear();
        out.extend(0..self.n_edges() as u32); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        out.sort_unstable_by(|&a, &b| {
            let cmp = self.weights[a as usize].total_cmp(&self.weights[b as usize]);
            let cmp = cmp.then(a.cmp(&b));
            if asc {
                cmp
            } else {
                cmp.reverse()
            }
        });
    }

    /// Converts a set of live local edges back into a [`Subgraph`] of the
    /// original graph.
    #[cfg(test)]
    pub fn to_subgraph<'g>(
        &self,
        g: &'g BipartiteGraph,
        live: impl Iterator<Item = u32>,
    ) -> Subgraph<'g> {
        Subgraph::from_edges(g, live.map(|le| self.edge_global(le)).collect())
    }

    /// Appends the global edge ids of the local edges in `live` to `out`.
    pub fn extend_globals(&self, live: &[u32], out: &mut Vec<EdgeId>) {
        out.extend(live.iter().map(|&le| self.edge_global(le)));
    }

    /// The shared result epilogue of every kernel: maps the local edges
    /// in `live` to global ids and normalises `out` to the sorted,
    /// deduplicated form [`Subgraph::from_edges`] would produce.
    pub fn emit_globals(&self, live: &[u32], out: &mut Vec<EdgeId>) {
        self.extend_globals(live, out);
        out.sort_unstable();
        out.dedup();
    }

    /// DFS over edges alive in `alive` from `start`; fills `out` with the
    /// local edge ids of `start`'s connected component. `visited` and
    /// `stack` are reusable scratch (cleared here); `out` is cleared too.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn component_edges_into(
        &self,
        start: u32,
        alive: &EdgeSet,
        visited: &mut VertexSet,
        stack: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        visited.ensure(self.n_vertices());
        visited.clear();
        stack.clear();
        out.clear();
        visited.insert_id(start as usize);
        stack.push(start); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        while let Some(x) = stack.pop() {
            for &(nbr, le) in self.adjacency(x) {
                if !alive.contains_id(le as usize) {
                    continue;
                }
                if self.is_upper_local(x) {
                    out.push(le); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
                if visited.insert_id(nbr as usize) {
                    stack.push(nbr); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
            }
        }
    }

    /// Resident heap bytes across the structure and its build scratch.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.verts.capacity() * size_of::<Vertex>()
            + self.edge_globals.capacity() * size_of::<EdgeId>()
            + self.edge_ends.capacity() * size_of::<(u32, u32)>()
            + self.weights.capacity() * size_of::<Weight>()
            + self.starts.capacity() * size_of::<u32>()
            + self.adj.capacity() * size_of::<(u32, u32)>()
            + self.build_degree.capacity() * size_of::<u32>()
            + self.build_cursor.capacity() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn fixture() -> (BipartiteGraph, Subgraph<'static>) {
        // Leak for 'static in tests only.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0);
        b.add_edge(0, 1, 3.0);
        b.add_edge(1, 0, 4.0);
        b.add_edge(1, 1, 1.0);
        b.add_edge(2, 2, 9.0); // separate component
        let g: &'static BipartiteGraph = Box::leak(Box::new(b.build().unwrap()));
        let sub = Subgraph::full(g);
        (g.clone(), sub)
    }

    #[test]
    fn local_ids_keep_layers_contiguous() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        assert_eq!(lg.n_vertices(), 6);
        assert_eq!(lg.n_upper_local(), 3);
        for lv in 0..lg.n_vertices() as u32 {
            let g = sub.graph();
            assert_eq!(lg.is_upper_local(lv), g.is_upper(lg.global_of(lv)));
        }
    }

    #[test]
    fn adjacency_roundtrip() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let lg = LocalGraph::new(&sub);
        for lv in 0..lg.n_vertices() as u32 {
            let gv = lg.global_of(lv);
            assert_eq!(lg.local_of(gv), Some(lv));
            assert_eq!(lg.full_degree(lv) as usize, g.degree(gv));
            for &(nbr, le) in lg.adjacency(lv) {
                let ge = lg.edge_global(le);
                assert_eq!(g.other_endpoint(ge, gv), lg.global_of(nbr));
                assert_eq!(lg.weight(le), g.weight(ge));
            }
        }
    }

    #[test]
    fn subset_community() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let comp = sub.component_of(g.upper(0));
        let lg = LocalGraph::new(&comp);
        assert_eq!(lg.n_vertices(), 4);
        assert_eq!(lg.n_edges(), 4);
        assert_eq!(lg.local_of(g.upper(2)), None);
    }

    #[test]
    fn rebuild_reuses_buffers_across_communities() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let mut lg = LocalGraph::new(&sub);
        assert_eq!(lg.n_edges(), 5);
        let comp = sub.component_of(g.upper(0));
        lg.rebuild(g, comp.edges());
        assert_eq!(lg.n_vertices(), 4);
        assert_eq!(lg.n_edges(), 4);
        assert_eq!(lg.local_of(g.upper(2)), None);
        // Shrinking then growing again keeps the structure consistent.
        lg.rebuild(g, sub.edges());
        assert_eq!(lg.n_vertices(), 6);
        assert_eq!(lg.n_edges(), 5);
        assert!(lg.heap_bytes() > 0);
        for lv in 0..lg.n_vertices() as u32 {
            assert_eq!(lg.full_degree(lv) as usize, g.degree(lg.global_of(lv)));
        }
    }

    #[test]
    fn weight_ordering() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        let mut asc = Vec::new();
        lg.edges_by_weight_into(true, &mut asc);
        let ws: Vec<f64> = asc.iter().map(|&e| lg.weight(e)).collect();
        assert!(ws.windows(2).all(|w| w[0] <= w[1]));
        let mut desc = Vec::new();
        lg.edges_by_weight_into(false, &mut desc);
        let ws: Vec<f64> = desc.iter().map(|&e| lg.weight(e)).collect();
        assert!(ws.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(lg.weight_bounds(), Some((1.0, 9.0)));
    }

    #[test]
    fn component_dfs_and_back_conversion() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let lg = LocalGraph::new(&sub);
        let mut alive = EdgeSet::new();
        alive.ensure(lg.n_edges());
        alive.clear();
        for le in 0..lg.n_edges() {
            alive.insert_id(le);
        }
        let mut visited = VertexSet::new();
        let mut stack = Vec::new();
        let mut comp = Vec::new();
        let q = lg.local_of(g.upper(0)).unwrap();
        lg.component_edges_into(q, &alive, &mut visited, &mut stack, &mut comp);
        assert_eq!(comp.len(), 4);
        let back = lg.to_subgraph(g, comp.iter().copied());
        assert_eq!(back.size(), 4);
        assert!(!back.contains_vertex(g.upper(2)));
        let mut globals = Vec::new();
        lg.extend_globals(&comp, &mut globals);
        globals.sort_unstable();
        assert_eq!(globals, back.edges());

        // Killing the edges incident to u0 isolates it.
        for &(_, le) in lg.adjacency(q) {
            alive.remove_id(le as usize);
        }
        lg.component_edges_into(q, &alive, &mut visited, &mut stack, &mut comp);
        assert!(comp.is_empty());
    }

    #[test]
    fn need_respects_sides() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        assert_eq!(lg.need(0, 3, 7), 3); // upper
        assert_eq!(lg.need(lg.n_upper_local() as u32, 3, 7), 7); // first lower
    }
}
