//! Compact local workspace for the SCS query algorithms.
//!
//! The whole point of the paper's two-step paradigm is that the second
//! step (peeling / expansion) works on `C_{α,β}(q)`, which is usually far
//! smaller than `G`. To make that real, the workspace re-indexes the
//! community's vertices and edges into dense local ids so every per-query
//! array is `O(size(C))`, not `O(n + m)`.

use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex, Weight};

/// A community re-indexed with dense local vertex/edge ids.
///
/// Local vertex ids preserve the global order, and since global ids place
/// the upper layer first, local ids `0..n_upper_local` are exactly the
/// upper vertices.
#[derive(Debug, Clone)]
pub(crate) struct LocalGraph {
    /// Global vertex per local id (sorted ascending).
    verts: Vec<Vertex>,
    /// Number of upper-layer vertices (they occupy local ids `0..this`).
    n_upper_local: usize,
    /// Global edge id per local edge.
    edge_globals: Vec<EdgeId>,
    /// Local endpoints per local edge: `(upper_local, lower_local)`.
    edge_ends: Vec<(u32, u32)>,
    /// Weight per local edge.
    weights: Vec<Weight>,
    /// CSR adjacency: `adj[starts[v]..starts[v+1]]` = `(nbr_local, edge_local)`.
    starts: Vec<u32>,
    adj: Vec<(u32, u32)>,
}

impl LocalGraph {
    /// Builds the workspace from a community subgraph.
    /// `O(size(C) log size(C))`.
    pub fn new(sub: &Subgraph<'_>) -> Self {
        let g = sub.graph();
        let verts = sub.vertices();
        let n_upper_local = verts.partition_point(|&v| g.is_upper(v));
        let local_of = |v: Vertex| -> u32 {
            verts.binary_search(&v).expect("endpoint of community edge") as u32
        };

        let m = sub.size();
        let mut edge_globals = Vec::with_capacity(m);
        let mut edge_ends = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut degree = vec![0u32; verts.len()];
        for &e in sub.edges() {
            let (u, l) = g.endpoints(e);
            let (lu, ll) = (local_of(u), local_of(l));
            edge_globals.push(e);
            edge_ends.push((lu, ll));
            weights.push(g.weight(e));
            degree[lu as usize] += 1;
            degree[ll as usize] += 1;
        }
        let mut starts = Vec::with_capacity(verts.len() + 1);
        let mut acc = 0u32;
        starts.push(0);
        for &d in &degree {
            acc += d;
            starts.push(acc);
        }
        let mut cursor: Vec<u32> = starts[..verts.len()].to_vec();
        let mut adj = vec![(0u32, 0u32); 2 * m];
        for (le, &(lu, ll)) in edge_ends.iter().enumerate() {
            adj[cursor[lu as usize] as usize] = (ll, le as u32);
            cursor[lu as usize] += 1;
            adj[cursor[ll as usize] as usize] = (lu, le as u32);
            cursor[ll as usize] += 1;
        }
        LocalGraph {
            verts,
            n_upper_local,
            edge_globals,
            edge_ends,
            weights,
            starts,
            adj,
        }
    }

    /// Number of local vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of local edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edge_globals.len()
    }

    /// Number of upper-layer vertices (local ids `0..n_upper_local`).
    #[inline]
    pub fn n_upper_local(&self) -> usize {
        self.n_upper_local
    }

    /// `true` iff local vertex `lv` is in the upper layer.
    #[inline]
    pub fn is_upper_local(&self, lv: u32) -> bool {
        (lv as usize) < self.n_upper_local
    }

    /// Degree requirement of local vertex `lv` under constraints (α,β).
    #[inline]
    pub fn need(&self, lv: u32, alpha: u32, beta: u32) -> u32 {
        if self.is_upper_local(lv) {
            alpha
        } else {
            beta
        }
    }

    /// Local id of global vertex `v`, if present.
    #[inline]
    pub fn local_of(&self, v: Vertex) -> Option<u32> {
        self.verts.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Global vertex of local id `lv`.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn global_of(&self, lv: u32) -> Vertex {
        self.verts[lv as usize]
    }

    /// Global edge id of local edge `le`.
    #[inline]
    pub fn edge_global(&self, le: u32) -> EdgeId {
        self.edge_globals[le as usize]
    }

    /// Local endpoints `(upper_local, lower_local)` of local edge `le`.
    #[inline]
    pub fn ends(&self, le: u32) -> (u32, u32) {
        self.edge_ends[le as usize]
    }

    /// Weight of local edge `le`.
    #[inline]
    pub fn weight(&self, le: u32) -> Weight {
        self.weights[le as usize]
    }

    /// Adjacency of local vertex `lv`: `(neighbor_local, edge_local)`.
    #[inline]
    pub fn adjacency(&self, lv: u32) -> &[(u32, u32)] {
        let i = lv as usize;
        &self.adj[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// Full local degree of `lv`.
    #[inline]
    pub fn full_degree(&self, lv: u32) -> u32 {
        self.starts[lv as usize + 1] - self.starts[lv as usize]
    }

    /// Local edge ids sorted by weight (ascending when `asc`, else
    /// descending); ties broken by edge id for determinism.
    pub fn edges_by_weight(&self, asc: bool) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.n_edges() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let cmp = self.weights[a as usize].total_cmp(&self.weights[b as usize]);
            let cmp = cmp.then(a.cmp(&b));
            if asc {
                cmp
            } else {
                cmp.reverse()
            }
        });
        order
    }

    /// Converts a set of live local edges back into a [`Subgraph`] of the
    /// original graph.
    pub fn to_subgraph<'g>(
        &self,
        g: &'g BipartiteGraph,
        live: impl Iterator<Item = u32>,
    ) -> Subgraph<'g> {
        Subgraph::from_edges(g, live.map(|le| self.edge_global(le)).collect())
    }

    /// BFS over live edges from `start`; returns the local edge ids of
    /// `start`'s connected component. `scratch_visited` must be at least
    /// `n_vertices` long and all-false; it is restored before returning.
    pub fn component_edges(&self, start: u32, alive: &[bool], visited: &mut [bool]) -> Vec<u32> {
        debug_assert!(visited.iter().all(|&x| !x));
        let mut out = Vec::new();
        let mut stack = vec![start];
        let mut touched = vec![start];
        visited[start as usize] = true;
        while let Some(x) = stack.pop() {
            for &(nbr, le) in self.adjacency(x) {
                if !alive[le as usize] {
                    continue;
                }
                if self.is_upper_local(x) {
                    out.push(le);
                }
                if !visited[nbr as usize] {
                    visited[nbr as usize] = true;
                    touched.push(nbr);
                    stack.push(nbr);
                }
            }
        }
        for t in touched {
            visited[t as usize] = false;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn fixture() -> (BipartiteGraph, Subgraph<'static>) {
        // Leak for 'static in tests only.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 5.0);
        b.add_edge(0, 1, 3.0);
        b.add_edge(1, 0, 4.0);
        b.add_edge(1, 1, 1.0);
        b.add_edge(2, 2, 9.0); // separate component
        let g: &'static BipartiteGraph = Box::leak(Box::new(b.build().unwrap()));
        let sub = Subgraph::full(g);
        (g.clone(), sub)
    }

    #[test]
    fn local_ids_keep_layers_contiguous() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        assert_eq!(lg.n_vertices(), 6);
        assert_eq!(lg.n_upper_local(), 3);
        for lv in 0..lg.n_vertices() as u32 {
            let g = sub.graph();
            assert_eq!(lg.is_upper_local(lv), g.is_upper(lg.global_of(lv)));
        }
    }

    #[test]
    fn adjacency_roundtrip() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let lg = LocalGraph::new(&sub);
        for lv in 0..lg.n_vertices() as u32 {
            let gv = lg.global_of(lv);
            assert_eq!(lg.local_of(gv), Some(lv));
            assert_eq!(lg.full_degree(lv) as usize, g.degree(gv));
            for &(nbr, le) in lg.adjacency(lv) {
                let ge = lg.edge_global(le);
                assert_eq!(g.other_endpoint(ge, gv), lg.global_of(nbr));
                assert_eq!(lg.weight(le), g.weight(ge));
            }
        }
    }

    #[test]
    fn subset_community() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let comp = sub.component_of(g.upper(0));
        let lg = LocalGraph::new(&comp);
        assert_eq!(lg.n_vertices(), 4);
        assert_eq!(lg.n_edges(), 4);
        assert_eq!(lg.local_of(g.upper(2)), None);
    }

    #[test]
    fn weight_ordering() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        let asc = lg.edges_by_weight(true);
        let ws: Vec<f64> = asc.iter().map(|&e| lg.weight(e)).collect();
        assert!(ws.windows(2).all(|w| w[0] <= w[1]));
        let desc = lg.edges_by_weight(false);
        let ws: Vec<f64> = desc.iter().map(|&e| lg.weight(e)).collect();
        assert!(ws.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn component_bfs_and_back_conversion() {
        let (_, sub) = fixture();
        let g = sub.graph();
        let lg = LocalGraph::new(&sub);
        let alive = vec![true; lg.n_edges()];
        let mut visited = vec![false; lg.n_vertices()];
        let q = lg.local_of(g.upper(0)).unwrap();
        let comp = lg.component_edges(q, &alive, &mut visited);
        assert_eq!(comp.len(), 4);
        assert!(visited.iter().all(|&x| !x), "scratch must be restored");
        let back = lg.to_subgraph(g, comp.into_iter());
        assert_eq!(back.size(), 4);
        assert!(!back.contains_vertex(g.upper(2)));

        // Killing the bridge edges isolates u0.
        let mut alive = vec![true; lg.n_edges()];
        // Find local edges incident to u0.
        for &(_, le) in lg.adjacency(q) {
            alive[le as usize] = false;
        }
        let comp = lg.component_edges(q, &alive, &mut visited);
        assert!(comp.is_empty());
    }

    #[test]
    fn need_respects_sides() {
        let (_, sub) = fixture();
        let lg = LocalGraph::new(&sub);
        assert_eq!(lg.need(0, 3, 7), 3); // upper
        assert_eq!(lg.need(lg.n_upper_local() as u32, 3, 7), 7); // first lower
    }
}
