//! Independent verification oracle for significant (α,β)-communities.
//!
//! This module re-derives the answer from Definition 5 alone, using only
//! the generic (slow) subgraph operations of `bigraph` — none of the
//! optimized index/peel/expand machinery. The test suites use it to
//! cross-check every fast algorithm.

use bigraph::{BipartiteGraph, Subgraph, Vertex, Weight};

/// The maximum weight `w` such that the subgraph of `community` induced
/// by edges of weight ≥ `w` still contains `q` in a connected,
/// degree-satisfying piece — i.e. `f(R)`. Linear scan over distinct
/// weights (deliberately naive).
pub fn max_feasible_weight(
    community: &Subgraph<'_>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Option<Weight> {
    let mut weights: Vec<Weight> = community
        .edges()
        .iter()
        .map(|&e| community.graph().weight(e))
        .collect();
    weights.sort_unstable_by(|a, b| b.total_cmp(a)); // descending
    weights.dedup_by(|a, b| a.total_cmp(b).is_eq());
    for w in weights {
        let core = community.filter_min_weight(w).peel_to_core(alpha, beta);
        if core.contains_vertex(q) {
            return Some(w);
        }
    }
    None
}

/// Reference implementation of the significant (α,β)-community: the
/// component of `q` in the (α,β)-core of the `f(R)`-filtered community.
pub fn reference_significant_community<'g>(
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    match max_feasible_weight(community, q, alpha, beta) {
        None => Subgraph::empty(community.graph()),
        Some(w) => community
            .filter_min_weight(w)
            .peel_to_core(alpha, beta)
            .component_of(q),
    }
}

/// Checks every clause of Definition 5 for a candidate result `r`, given
/// the community it was extracted from. Returns a human-readable error on
/// the first violation.
pub fn verify_significant(
    g: &BipartiteGraph,
    community: &Subgraph<'_>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    r: &Subgraph<'_>,
) -> Result<(), String> {
    if community.is_empty() {
        return if r.is_empty() {
            Ok(())
        } else {
            Err("result must be empty when the community is empty".into())
        };
    }
    if r.is_empty() {
        return Err("result must be nonempty when the community is nonempty".into());
    }
    // 1) Connectivity: connected and contains q.
    if !r.contains_vertex(q) {
        return Err(format!("result does not contain the query vertex {q:?}"));
    }
    if !r.is_connected() {
        return Err("result is not connected".into());
    }
    // 2) Cohesiveness.
    if !r.satisfies_degrees(alpha, beta) {
        return Err(format!(
            "result violates the (α={alpha}, β={beta}) degree constraint"
        ));
    }
    // Result must live inside the community.
    if !r.edges().iter().all(|&e| community.contains_edge(e)) {
        return Err("result contains edges outside the community".into());
    }
    // 3) Maximality: f(r) is the max feasible weight, and r is the full
    // component at that weight.
    let f_r = r.min_weight().expect("nonempty");
    let best =
        max_feasible_weight(community, q, alpha, beta).expect("community itself is feasible");
    if f_r.total_cmp(&best).is_ne() {
        return Err(format!(
            "f(R) = {f_r} but the maximum feasible weight is {best}"
        ));
    }
    let reference = reference_significant_community(community, q, alpha, beta);
    if !r.same_edges(&reference) {
        return Err(format!(
            "result is not edge-maximal: has {} edges, reference has {}",
            r.size(),
            reference.size()
        ));
    }
    let _ = g;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bicore::abcore::abcore_community;
    use bigraph::builder::figure2_example;

    #[test]
    fn oracle_on_figure2() {
        let g = figure2_example();
        let q = g.upper(2);
        let c = abcore_community(&g, q, 2, 2);
        assert_eq!(max_feasible_weight(&c, q, 2, 2), Some(13.0));
        let r = reference_significant_community(&c, q, 2, 2);
        assert_eq!(r.size(), 4);
        assert!(verify_significant(&g, &c, q, 2, 2, &r).is_ok());
    }

    #[test]
    fn oracle_rejects_bad_candidates() {
        let g = figure2_example();
        let q = g.upper(2);
        let c = abcore_community(&g, q, 2, 2);
        // The whole community is connected and satisfies degrees but is
        // not weight-maximal.
        let err = verify_significant(&g, &c, q, 2, 2, &c).unwrap_err();
        assert!(err.contains("f(R)"), "{err}");
        // The empty result is rejected for a nonempty community.
        let err = verify_significant(&g, &c, q, 2, 2, &Subgraph::empty(&g)).unwrap_err();
        assert!(err.contains("nonempty"), "{err}");
    }

    #[test]
    fn empty_community_accepts_only_empty() {
        let g = figure2_example();
        let q = g.upper(499);
        let c = abcore_community(&g, q, 2, 2);
        assert!(c.is_empty());
        assert!(verify_significant(&g, &c, q, 2, 2, &Subgraph::empty(&g)).is_ok());
    }

    #[test]
    fn workspace_variants_satisfy_the_definition() {
        // The oracle is the definitional ground truth; the reused-
        // workspace entry points must satisfy every clause of
        // Definition 5 just like the fresh-allocation paths do.
        use crate::query::{scs_binary_in, scs_expand_in, scs_peel_in};
        use crate::workspace::QueryWorkspace;
        let g = figure2_example();
        let mut ws = QueryWorkspace::new();
        for (a, b) in [(2, 2), (3, 3), (2, 3)] {
            for qi in 0..4 {
                let q = g.upper(qi);
                let c = abcore_community(&g, q, a, b);
                if c.is_empty() {
                    continue;
                }
                for (name, r) in [
                    ("peel", scs_peel_in(&g, &c, q, a, b, &mut ws)),
                    ("expand", scs_expand_in(&g, &c, q, a, b, &mut ws)),
                    ("binary", scs_binary_in(&g, &c, q, a, b, &mut ws)),
                ] {
                    verify_significant(&g, &c, q, a, b, &r)
                        .unwrap_or_else(|e| panic!("{name} α={a} β={b} q={q:?}: {e}"));
                }
            }
        }
    }
}
