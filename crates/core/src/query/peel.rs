//! `SCS-Peel` (Algorithm 4): extract the significant (α,β)-community by
//! repeatedly deleting the minimum-weight edge group and cascading degree
//! violations until the query vertex fails, then rolling back the last
//! iteration and taking `q`'s connected component.

use crate::local::LocalGraph;
use bigraph::{BipartiteGraph, Subgraph, Vertex};

/// Degree-peels an arbitrary subset of local edges to its (α,β)-core.
/// Returns `(alive, deg)` over all local edges/vertices (edges outside
/// `subset` are dead with no degree contribution).
pub(crate) fn degree_peel(
    lg: &LocalGraph,
    subset: &[u32],
    alpha: u32,
    beta: u32,
) -> (Vec<bool>, Vec<u32>) {
    let mut alive = vec![false; lg.n_edges()];
    let mut deg = vec![0u32; lg.n_vertices()];
    for &le in subset {
        alive[le as usize] = true;
        let (a, b) = lg.ends(le);
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    let mut queue: Vec<u32> = (0..lg.n_vertices() as u32)
        .filter(|&v| deg[v as usize] > 0 && deg[v as usize] < lg.need(v, alpha, beta))
        .collect();
    while let Some(v) = queue.pop() {
        for &(nbr, le) in lg.adjacency(v) {
            if !alive[le as usize] {
                continue;
            }
            alive[le as usize] = false;
            deg[v as usize] -= 1;
            deg[nbr as usize] -= 1;
            let nd = deg[nbr as usize];
            if nd > 0 && nd < lg.need(nbr, alpha, beta) {
                queue.push(nbr);
            }
            // A vertex that hits degree 0 has no edges left; nothing to
            // cascade for it.
        }
    }
    (alive, deg)
}

/// The weighted peeling loop of Algorithm 4 over a live edge set.
///
/// Preconditions: `(alive, deg)` describe a subgraph in which every
/// vertex satisfies its (α,β) degree constraint and `deg[lq] > 0`.
/// `order_asc` lists all local edges sorted by weight ascending (dead
/// entries are skipped). `visited` is an all-false scratch buffer of
/// length `n_vertices`, restored before returning.
///
/// Returns the local edges of the significant community of `lq`.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 4's explicit state
pub(crate) fn weighted_peel(
    lg: &LocalGraph,
    mut alive: Vec<bool>,
    mut deg: Vec<u32>,
    lq: u32,
    alpha: u32,
    beta: u32,
    order_asc: &[u32],
    visited: &mut [bool],
) -> Vec<u32> {
    debug_assert!(deg[lq as usize] >= lg.need(lq, alpha, beta));
    let mut removed_this_iter: Vec<u32> = Vec::new();
    let mut cascade: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < order_asc.len() {
        // Skip edges already dead (outside the subset or removed earlier).
        while i < order_asc.len() && !alive[order_asc[i] as usize] {
            i += 1;
        }
        if i >= order_asc.len() {
            break;
        }
        let w_min = lg.weight(order_asc[i]);
        removed_this_iter.clear();
        // Remove the whole minimum-weight group.
        while i < order_asc.len() && lg.weight(order_asc[i]).total_cmp(&w_min).is_eq() {
            let le = order_asc[i];
            i += 1;
            if !alive[le as usize] {
                continue;
            }
            alive[le as usize] = false;
            removed_this_iter.push(le);
            let (a, b) = lg.ends(le);
            for v in [a, b] {
                deg[v as usize] -= 1;
                let d = deg[v as usize];
                if d > 0 && d < lg.need(v, alpha, beta) {
                    cascade.push(v);
                }
            }
        }
        // Cascade removals of under-degree vertices.
        while let Some(v) = cascade.pop() {
            for &(nbr, le) in lg.adjacency(v) {
                if !alive[le as usize] {
                    continue;
                }
                alive[le as usize] = false;
                removed_this_iter.push(le);
                deg[v as usize] -= 1;
                deg[nbr as usize] -= 1;
                let nd = deg[nbr as usize];
                if nd > 0 && nd < lg.need(nbr, alpha, beta) {
                    cascade.push(nbr);
                }
            }
        }
        // Did q fail this iteration? Then the state at the iteration's
        // start (removed ∪ still-alive) is the answer graph G′ of
        // Algorithm 4 line 21; q's component of it is R.
        if deg[lq as usize] < lg.need(lq, alpha, beta) {
            for &le in &removed_this_iter {
                alive[le as usize] = true;
            }
            return lg.component_edges(lq, &alive, visited);
        }
    }
    unreachable!("peeling always dequalifies q before the edge list runs out");
}

/// `SCS-Peel`: extracts the significant (α,β)-community of `q` from its
/// (α,β)-community.
///
/// `community` must be `C_{α,β}(q)` (e.g. from
/// [`crate::index::DeltaIndex::query_community`]); passing the empty
/// subgraph yields the empty result.
///
/// Complexity: `O(sort(C) + size(C))` time, `O(size(C))` space.
pub fn scs_peel<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    if community.is_empty() {
        return Subgraph::empty(g);
    }
    let lg = LocalGraph::new(community);
    let lq = lg
        .local_of(q)
        .expect("query vertex must belong to its community");
    // All-equal weights: the community itself is the answer.
    if let (Some(lo), Some(hi)) = (community.min_weight(), community.max_weight()) {
        if lo.total_cmp(&hi).is_eq() {
            return community.clone();
        }
    }
    let order = lg.edges_by_weight(true);
    let alive = vec![true; lg.n_edges()];
    let deg: Vec<u32> = (0..lg.n_vertices() as u32)
        .map(|v| lg.full_degree(v))
        .collect();
    let mut visited = vec![false; lg.n_vertices()];
    let r = weighted_peel(
        &lg,
        alive,
        deg,
        lq,
        alpha as u32,
        beta as u32,
        &order,
        &mut visited,
    );
    lg.to_subgraph(g, r.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use bigraph::builder::figure2_example;
    use bigraph::GraphBuilder;

    #[test]
    fn figure2_significant_2_2_community() {
        // Example 1 of the paper: the significant (2,2)-community of u3
        // is {(u3,v1),(u3,v2),(u4,v1),(u4,v2)}.
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let q = g.upper(2); // u3
        let c = idx.query_community(&g, q, 2, 2);
        assert_eq!(c.size(), 13);
        let r = scs_peel(&g, &c, q, 2, 2);
        assert_eq!(r.size(), 4);
        let expect = [
            (g.upper(2), g.lower(0)),
            (g.upper(2), g.lower(1)),
            (g.upper(3), g.lower(0)),
            (g.upper(3), g.lower(1)),
        ];
        for (u, v) in expect {
            let e = g.find_edge(u, v).unwrap();
            assert!(r.contains_edge(e), "missing ({u:?},{v:?})");
        }
        // f(R) = w(u3, v2) = 13.
        assert_eq!(r.min_weight(), Some(13.0));
    }

    #[test]
    fn all_equal_weights_return_community() {
        let mut b = GraphBuilder::new();
        for u in 0..3 {
            for l in 0..3 {
                b.add_edge(u, l, 7.0);
            }
        }
        let g = b.build().unwrap();
        let idx = DeltaIndex::build(&g);
        let c = idx.query_community(&g, g.upper(0), 2, 2);
        let r = scs_peel(&g, &c, g.upper(0), 2, 2);
        assert!(r.same_edges(&c));
    }

    #[test]
    fn empty_community_empty_result() {
        let g = figure2_example();
        let c = Subgraph::empty(&g);
        let r = scs_peel(&g, &c, g.upper(0), 2, 2);
        assert!(r.is_empty());
    }

    #[test]
    fn result_satisfies_all_constraints() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        for (a, b) in [(1, 1), (2, 2), (2, 3), (3, 2), (3, 3)] {
            for qi in 0..4 {
                let q = g.upper(qi);
                let c = idx.query_community(&g, q, a, b);
                if c.is_empty() {
                    continue;
                }
                let r = scs_peel(&g, &c, q, a, b);
                assert!(!r.is_empty(), "α={a} β={b} q={q:?}");
                assert!(r.is_connected());
                assert!(r.contains_vertex(q));
                assert!(r.satisfies_degrees(a, b));
            }
        }
    }
}
