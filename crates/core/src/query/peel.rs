//! `SCS-Peel` (Algorithm 4): extract the significant (α,β)-community by
//! repeatedly deleting the minimum-weight edge group and cascading degree
//! violations until the query vertex fails, then rolling back the last
//! iteration and taking `q`'s connected component.
//!
//! The kernels run entirely on the community-sized scratch of a
//! [`QueryWorkspace`] — epoch-stamped liveness sets instead of per-query
//! `vec![bool]` buffers — so a warm workspace peels without allocating.

use crate::local::LocalGraph;
use crate::workspace::{LocalScratch, QueryWorkspace};
use bigraph::workspace::EdgeSet;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};

/// Degree-peels an arbitrary subset of local edges to its (α,β)-core.
/// On return `alive` holds the surviving edges and `deg` the live degree
/// of every local vertex (edges outside `subset` are dead with no degree
/// contribution). `queue` is worklist scratch. All three are reset here.
pub(crate) fn degree_peel_in(
    lg: &LocalGraph,
    subset: &[u32],
    alpha: u32,
    beta: u32,
    alive: &mut EdgeSet,
    deg: &mut Vec<u32>,
    queue: &mut Vec<u32>,
) {
    alive.ensure(lg.n_edges());
    alive.clear();
    deg.clear();
    deg.resize(lg.n_vertices(), 0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    for &le in subset {
        alive.insert_id(le as usize);
        let (a, b) = lg.ends(le);
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    queue.clear();
    for v in 0..lg.n_vertices() as u32 {
        let d = deg[v as usize];
        if d > 0 && d < lg.need(v, alpha, beta) {
            queue.push(v); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        }
    }
    while let Some(v) = queue.pop() {
        for &(nbr, le) in lg.adjacency(v) {
            if !alive.remove_id(le as usize) {
                continue;
            }
            deg[v as usize] -= 1;
            deg[nbr as usize] -= 1;
            let nd = deg[nbr as usize];
            if nd > 0 && nd < lg.need(nbr, alpha, beta) {
                queue.push(nbr); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
            // A vertex that hits degree 0 has no edges left; nothing to
            // cascade for it.
        }
    }
}

/// The weighted peeling loop of Algorithm 4 over the live edge set in
/// `s.alive`.
///
/// Preconditions: `(s.alive, s.deg)` describe a subgraph in which every
/// vertex satisfies its (α,β) degree constraint and `s.deg[lq] > 0`.
/// `order_asc` lists all live local edges sorted by weight ascending
/// (dead entries are skipped). Clobbers `s.removed`, `s.cascade`,
/// `s.visited` and `s.stack`; leaves the local edges of the significant
/// community of `lq` in `s.out`.
pub(crate) fn weighted_peel_in(
    lg: &LocalGraph,
    lq: u32,
    alpha: u32,
    beta: u32,
    order_asc: &[u32],
    s: &mut LocalScratch,
) {
    debug_assert!(s.deg[lq as usize] >= lg.need(lq, alpha, beta));
    s.removed.clear();
    s.cascade.clear();
    let mut i = 0;
    while i < order_asc.len() {
        // Skip edges already dead (outside the subset or removed earlier).
        while i < order_asc.len() && !s.alive.contains_id(order_asc[i] as usize) {
            i += 1;
        }
        if i >= order_asc.len() {
            break;
        }
        let w_min = lg.weight(order_asc[i]);
        s.removed.clear();
        // Remove the whole minimum-weight group.
        while i < order_asc.len() && lg.weight(order_asc[i]).total_cmp(&w_min).is_eq() {
            let le = order_asc[i];
            i += 1;
            if !s.alive.remove_id(le as usize) {
                continue;
            }
            s.removed.push(le); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            let (a, b) = lg.ends(le);
            for v in [a, b] {
                s.deg[v as usize] -= 1;
                let d = s.deg[v as usize];
                if d > 0 && d < lg.need(v, alpha, beta) {
                    s.cascade.push(v); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
            }
        }
        // Cascade removals of under-degree vertices.
        while let Some(v) = s.cascade.pop() {
            for &(nbr, le) in lg.adjacency(v) {
                if !s.alive.remove_id(le as usize) {
                    continue;
                }
                s.removed.push(le); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                s.deg[v as usize] -= 1;
                s.deg[nbr as usize] -= 1;
                let nd = s.deg[nbr as usize];
                if nd > 0 && nd < lg.need(nbr, alpha, beta) {
                    s.cascade.push(nbr); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
            }
        }
        // Did q fail this iteration? Then the state at the iteration's
        // start (removed ∪ still-alive) is the answer graph G′ of
        // Algorithm 4 line 21; q's component of it is R.
        if s.deg[lq as usize] < lg.need(lq, alpha, beta) {
            for &le in &s.removed {
                s.alive.insert_id(le as usize);
            }
            let LocalScratch {
                alive,
                visited,
                stack,
                out,
                ..
            } = s;
            lg.component_edges_into(lq, alive, visited, stack, out);
            return;
        }
    }
    unreachable!("peeling always dequalifies q before the edge list runs out");
}

/// Allocation-free `SCS-Peel`: extracts the significant (α,β)-community
/// of `q` from its (α,β)-community given as a sorted edge-id slice.
/// `out` is cleared first and receives the sorted result edges. All
/// scratch comes from `ws`; a warm workspace makes this heap-silent.
// scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn scs_peel_into(
    g: &BipartiteGraph,
    community: &[EdgeId],
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
    out: &mut Vec<EdgeId>,
) {
    out.clear();
    if community.is_empty() {
        return;
    }
    ws.local.rebuild(g, community);
    ws.fit_local(ws.local.n_vertices(), ws.local.n_edges());
    let QueryWorkspace {
        local: lg,
        scratch: s,
        ..
    } = ws;
    let lq = lg
        .local_of(q)
        .expect("query vertex must belong to its community");
    // All-equal weights: the community itself is the answer.
    if let Some((lo, hi)) = lg.weight_bounds() {
        if lo.total_cmp(&hi).is_eq() {
            out.extend_from_slice(community);
            out.sort_unstable();
            out.dedup();
            return;
        }
    }
    lg.edges_by_weight_into(true, &mut s.order);
    // Initial liveness — the whole community — lives in the workspace
    // edge-set instead of a per-query `vec![true; n_edges]`.
    s.alive.ensure(lg.n_edges());
    s.alive.clear();
    for le in 0..lg.n_edges() {
        s.alive.insert_id(le);
    }
    s.deg.clear();
    s.deg
        .extend((0..lg.n_vertices() as u32).map(|v| lg.full_degree(v))); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    let order = std::mem::take(&mut s.order);
    weighted_peel_in(lg, lq, alpha as u32, beta as u32, &order, s);
    s.order = order;
    lg.emit_globals(&s.out, out);
}

/// [`scs_peel`] with caller-provided reusable scratch.
pub fn scs_peel_in<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    scs_peel_into(g, community.edges(), q, alpha, beta, ws, &mut out);
    Subgraph::from_edges(g, out)
}

/// `SCS-Peel`: extracts the significant (α,β)-community of `q` from its
/// (α,β)-community.
///
/// `community` must be `C_{α,β}(q)` (e.g. from
/// [`crate::index::DeltaIndex::query_community`]); passing the empty
/// subgraph yields the empty result.
///
/// Thin wrapper over [`scs_peel_in`] with a throwaway workspace.
/// Complexity: `O(sort(C) + size(C))` time, `O(size(C))` space.
pub fn scs_peel<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    scs_peel_in(g, community, q, alpha, beta, &mut QueryWorkspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use bigraph::builder::figure2_example;
    use bigraph::GraphBuilder;

    #[test]
    fn figure2_significant_2_2_community() {
        // Example 1 of the paper: the significant (2,2)-community of u3
        // is {(u3,v1),(u3,v2),(u4,v1),(u4,v2)}.
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let q = g.upper(2); // u3
        let c = idx.query_community(&g, q, 2, 2);
        assert_eq!(c.size(), 13);
        let r = scs_peel(&g, &c, q, 2, 2);
        assert_eq!(r.size(), 4);
        let expect = [
            (g.upper(2), g.lower(0)),
            (g.upper(2), g.lower(1)),
            (g.upper(3), g.lower(0)),
            (g.upper(3), g.lower(1)),
        ];
        for (u, v) in expect {
            let e = g.find_edge(u, v).unwrap();
            assert!(r.contains_edge(e), "missing ({u:?},{v:?})");
        }
        // f(R) = w(u3, v2) = 13.
        assert_eq!(r.min_weight(), Some(13.0));
    }

    #[test]
    fn all_equal_weights_return_community() {
        let mut b = GraphBuilder::new();
        for u in 0..3 {
            for l in 0..3 {
                b.add_edge(u, l, 7.0);
            }
        }
        let g = b.build().unwrap();
        let idx = DeltaIndex::build(&g);
        let c = idx.query_community(&g, g.upper(0), 2, 2);
        let r = scs_peel(&g, &c, g.upper(0), 2, 2);
        assert!(r.same_edges(&c));
    }

    #[test]
    fn empty_community_empty_result() {
        let g = figure2_example();
        let c = Subgraph::empty(&g);
        let r = scs_peel(&g, &c, g.upper(0), 2, 2);
        assert!(r.is_empty());
    }

    #[test]
    fn result_satisfies_all_constraints() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        for (a, b) in [(1, 1), (2, 2), (2, 3), (3, 2), (3, 3)] {
            for qi in 0..4 {
                let q = g.upper(qi);
                let c = idx.query_community(&g, q, a, b);
                if c.is_empty() {
                    continue;
                }
                let r = scs_peel(&g, &c, q, a, b);
                assert!(!r.is_empty(), "α={a} β={b} q={q:?}");
                assert!(r.is_connected());
                assert!(r.contains_vertex(q));
                assert!(r.satisfies_degrees(a, b));
            }
        }
    }

    #[test]
    fn reused_workspace_matches_fresh() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let mut ws = QueryWorkspace::new();
        let mut out = Vec::new();
        for (a, b) in [(2, 2), (3, 3), (2, 3)] {
            for qi in 0..4 {
                let q = g.upper(qi);
                let c = idx.query_community(&g, q, a, b);
                if c.is_empty() {
                    continue;
                }
                let fresh = scs_peel(&g, &c, q, a, b);
                let reused = scs_peel_in(&g, &c, q, a, b, &mut ws);
                assert!(reused.same_edges(&fresh), "α={a} β={b} q={q:?}");
                scs_peel_into(&g, c.edges(), q, a, b, &mut ws, &mut out);
                assert_eq!(out, fresh.edges(), "α={a} β={b} q={q:?}");
            }
        }
    }
}
