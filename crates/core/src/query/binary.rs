//! `SCS-Binary`: binary search over the distinct edge weights of the
//! community (the alternative the paper discusses in the Section IV-B
//! remark). Each probe peels the weight-filtered community to its
//! (α,β)-core and checks whether the query vertex survives; the answer is
//! the component of `q` at the largest feasible weight.
//!
//! Every probe reuses the [`QueryWorkspace`]'s subset/liveness/degree
//! buffers, so the `O(log W)` probes perform zero allocations on a warm
//! workspace — previously each probe allocated three community-sized
//! arrays.

use crate::local::LocalGraph;
use crate::query::peel::degree_peel_in;
use crate::workspace::{LocalScratch, QueryWorkspace};
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex, Weight};

/// `SCS-Binary`: finds the significant (α,β)-community by binary search
/// on the weight threshold. `O(log W · size(C))` time where `W` is the
/// number of distinct weights in the community.
///
/// Thin wrapper over [`scs_binary_in`] with a throwaway workspace.
pub fn scs_binary<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    scs_binary_in(g, community, q, alpha, beta, &mut QueryWorkspace::new())
}

/// [`scs_binary`] with caller-provided reusable scratch.
pub fn scs_binary_in<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    scs_binary_into(g, community.edges(), q, alpha, beta, ws, &mut out);
    Subgraph::from_edges(g, out)
}

/// `feasible(w)`: `q` survives the (α,β)-peel of `{edges of weight ≥ w}`.
/// Leaves the surviving edges in `s.alive` and degrees in `s.deg`.
fn feasible(
    lg: &LocalGraph,
    w: Weight,
    lq: u32,
    alpha: u32,
    beta: u32,
    s: &mut LocalScratch,
) -> bool {
    s.subset.clear();
    s.subset
        .extend((0..lg.n_edges() as u32).filter(|&le| lg.weight(le) >= w)); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    let subset = std::mem::take(&mut s.subset);
    degree_peel_in(
        lg,
        &subset,
        alpha,
        beta,
        &mut s.alive,
        &mut s.deg,
        &mut s.cascade,
    );
    s.subset = subset;
    s.deg[lq as usize] >= lg.need(lq, alpha, beta)
}

/// Allocation-free `SCS-Binary` over a community given as a sorted
/// edge-id slice; `out` is cleared first and receives the sorted result
/// edges.
// scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn scs_binary_into(
    g: &BipartiteGraph,
    community: &[EdgeId],
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
    out: &mut Vec<EdgeId>,
) {
    out.clear();
    if community.is_empty() {
        return;
    }
    ws.local.rebuild(g, community);
    ws.fit_local(ws.local.n_vertices(), ws.local.n_edges());
    let QueryWorkspace {
        local: lg,
        scratch: s,
        ..
    } = ws;
    let lq = lg
        .local_of(q)
        .expect("query vertex must belong to its community");
    let (alpha, beta) = (alpha as u32, beta as u32);

    // Distinct weights, ascending.
    s.weights.clear();
    s.weights
        .extend((0..lg.n_edges() as u32).map(|le| lg.weight(le))); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    s.weights.sort_unstable_by(|a, b| a.total_cmp(b));
    s.weights.dedup_by(|a, b| a.total_cmp(b).is_eq());
    let weights = std::mem::take(&mut s.weights);

    // Invariant: weights[lo] feasible, weights[hi] infeasible (hi may be
    // one past the end). Feasibility is monotone: feasible at the minimum
    // weight (the community itself), infeasible beyond the maximum.
    let mut lo = 0usize;
    let mut hi = weights.len();
    debug_assert!(
        feasible(lg, weights[0], lq, alpha, beta, s),
        "community itself qualifies"
    );
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(lg, weights[mid], lq, alpha, beta, s) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Re-peel at the answer threshold so `s.alive` holds its core.
    let ok = feasible(lg, weights[lo], lq, alpha, beta, s);
    assert!(ok, "lo is feasible by invariant");
    s.weights = weights;
    let LocalScratch {
        alive,
        visited,
        stack,
        out: lout,
        ..
    } = s;
    lg.component_edges_into(lq, alive, visited, stack, lout);
    lg.emit_globals(&s.out, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use crate::query::peel::scs_peel;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure2_matches_peel() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let q = g.upper(2);
        let c = idx.query_community(&g, q, 2, 2);
        let r = scs_binary(&g, &c, q, 2, 2);
        assert_eq!(r.size(), 4);
        assert_eq!(r.min_weight(), Some(13.0));
    }

    #[test]
    fn random_graphs_match_peel() {
        let mut rng = StdRng::seed_from_u64(400);
        let mut ws = QueryWorkspace::new();
        for trial in 0..4 {
            let g0 = random_bipartite(18, 18, 120 + trial * 12, &mut rng);
            let g = WeightModel::Ratings { levels: 5 }.apply(&g0, &mut rng);
            let idx = DeltaIndex::build(&g);
            for a in 1..=3 {
                for b in 1..=3 {
                    for qi in 0..5 {
                        let q = g.lower(qi);
                        let c = idx.query_community(&g, q, a, b);
                        if c.is_empty() {
                            continue;
                        }
                        let rp = scs_peel(&g, &c, q, a, b);
                        let rb = scs_binary(&g, &c, q, a, b);
                        assert!(rb.same_edges(&rp), "α={a} β={b} q={q:?}");
                        // The reused-workspace form gives the same answer.
                        let rw = scs_binary_in(&g, &c, q, a, b, &mut ws);
                        assert!(rw.same_edges(&rb), "α={a} β={b} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn few_distinct_weights() {
        // The paper notes SCS-Binary shines when the number of distinct
        // weights is small; make sure a 2-level weighting works.
        let mut rng = StdRng::seed_from_u64(401);
        let g0 = random_bipartite(15, 15, 100, &mut rng);
        let g = g0.reweighted(|e, _, _| if e.index() % 2 == 0 { 1.0 } else { 2.0 });
        let idx = DeltaIndex::build(&g);
        let q = g.upper(0);
        let c = idx.query_community(&g, q, 2, 2);
        if c.is_empty() {
            return;
        }
        let rp = scs_peel(&g, &c, q, 2, 2);
        let rb = scs_binary(&g, &c, q, 2, 2);
        assert!(rb.same_edges(&rp));
    }

    #[test]
    fn empty_community() {
        let g = figure2_example();
        assert!(scs_binary(&g, &Subgraph::empty(&g), g.upper(0), 2, 2).is_empty());
    }
}
