//! `SCS-Binary`: binary search over the distinct edge weights of the
//! community (the alternative the paper discusses in the Section IV-B
//! remark). Each probe peels the weight-filtered community to its
//! (α,β)-core and checks whether the query vertex survives; the answer is
//! the component of `q` at the largest feasible weight.

use crate::local::LocalGraph;
use crate::query::peel::degree_peel;
use bigraph::{BipartiteGraph, Subgraph, Vertex, Weight};

/// `SCS-Binary`: finds the significant (α,β)-community by binary search
/// on the weight threshold. `O(log W · size(C))` time where `W` is the
/// number of distinct weights in the community.
pub fn scs_binary<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    if community.is_empty() {
        return Subgraph::empty(g);
    }
    let lg = LocalGraph::new(community);
    let lq = lg
        .local_of(q)
        .expect("query vertex must belong to its community");
    let (alpha, beta) = (alpha as u32, beta as u32);

    // Distinct weights, ascending.
    let mut weights: Vec<Weight> = (0..lg.n_edges() as u32).map(|le| lg.weight(le)).collect();
    weights.sort_unstable_by(|a, b| a.total_cmp(b));
    weights.dedup_by(|a, b| a.total_cmp(b).is_eq());

    // feasible(w): q survives the (α,β)-peel of {edges with weight ≥ w}.
    // Monotone: feasible at the minimum weight (the community itself),
    // infeasible beyond the maximum.
    let feasible = |w: Weight| -> Option<(Vec<bool>, Vec<u32>)> {
        let subset: Vec<u32> = (0..lg.n_edges() as u32)
            .filter(|&le| lg.weight(le) >= w)
            .collect();
        let (alive, deg) = degree_peel(&lg, &subset, alpha, beta);
        if deg[lq as usize] >= lg.need(lq, alpha, beta) {
            Some((alive, deg))
        } else {
            None
        }
    };

    // Invariant: weights[lo] feasible, weights[hi] infeasible (hi may be
    // one past the end).
    let mut lo = 0usize;
    let mut hi = weights.len();
    debug_assert!(feasible(weights[0]).is_some(), "community itself qualifies");
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(weights[mid]).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (alive, _) = feasible(weights[lo]).expect("lo is feasible by invariant");
    let mut visited = vec![false; lg.n_vertices()];
    let r = lg.component_edges(lq, &alive, &mut visited);
    lg.to_subgraph(g, r.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use crate::query::peel::scs_peel;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure2_matches_peel() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let q = g.upper(2);
        let c = idx.query_community(&g, q, 2, 2);
        let r = scs_binary(&g, &c, q, 2, 2);
        assert_eq!(r.size(), 4);
        assert_eq!(r.min_weight(), Some(13.0));
    }

    #[test]
    fn random_graphs_match_peel() {
        let mut rng = StdRng::seed_from_u64(400);
        for trial in 0..4 {
            let g0 = random_bipartite(18, 18, 120 + trial * 12, &mut rng);
            let g = WeightModel::Ratings { levels: 5 }.apply(&g0, &mut rng);
            let idx = DeltaIndex::build(&g);
            for a in 1..=3 {
                for b in 1..=3 {
                    for qi in 0..5 {
                        let q = g.lower(qi);
                        let c = idx.query_community(&g, q, a, b);
                        if c.is_empty() {
                            continue;
                        }
                        let rp = scs_peel(&g, &c, q, a, b);
                        let rb = scs_binary(&g, &c, q, a, b);
                        assert!(rb.same_edges(&rp), "α={a} β={b} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn few_distinct_weights() {
        // The paper notes SCS-Binary shines when the number of distinct
        // weights is small; make sure a 2-level weighting works.
        let mut rng = StdRng::seed_from_u64(401);
        let g0 = random_bipartite(15, 15, 100, &mut rng);
        let g = g0.reweighted(|e, _, _| if e.index() % 2 == 0 { 1.0 } else { 2.0 });
        let idx = DeltaIndex::build(&g);
        let q = g.upper(0);
        let c = idx.query_community(&g, q, 2, 2);
        if c.is_empty() {
            return;
        }
        let rp = scs_peel(&g, &c, q, 2, 2);
        let rb = scs_binary(&g, &c, q, 2, 2);
        assert!(rb.same_edges(&rp));
    }

    #[test]
    fn empty_community() {
        let g = figure2_example();
        assert!(scs_binary(&g, &Subgraph::empty(&g), g.upper(0), 2, 2).is_empty());
    }
}
