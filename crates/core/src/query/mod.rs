//! Query algorithms for the significant (α,β)-community (Section IV).

pub mod baseline;
pub mod binary;
pub mod expand;
pub mod oracle;
pub mod peel;

pub use baseline::scs_baseline;
pub use binary::scs_binary;
pub use expand::{
    scs_expand, scs_expand_with_epsilon, scs_expand_with_options, ExpandOptions, DEFAULT_EPSILON,
};
pub use peel::scs_peel;
