//! Query algorithms for the significant (α,β)-community (Section IV).

pub mod baseline;
pub mod binary;
pub mod expand;
pub mod oracle;
pub mod peel;

pub use baseline::{scs_baseline, scs_baseline_in, scs_baseline_into};
pub use binary::{scs_binary, scs_binary_in, scs_binary_into};
pub use expand::{
    scs_expand, scs_expand_in, scs_expand_into, scs_expand_with_epsilon, scs_expand_with_options,
    scs_expand_with_options_in, ExpandOptions, DEFAULT_EPSILON,
};
pub use peel::{scs_peel, scs_peel_in, scs_peel_into};
