//! `SCS-Expand` (Algorithm 5): extract the significant (α,β)-community by
//! inserting edges in weight-descending order into an initially empty
//! graph `G*`, maintaining connected components with union-find, and
//! validating the query vertex's component `C*` only when the cheap
//! pruning rules (Lemmas 7 and 8) pass and `C*` has grown by a factor of
//! ε since the last validation (ε = 2 minimizes total validation work).
//!
//! Unlike `SCS-Peel`, which must sort the whole community up front, the
//! expansion consumes edges lazily from a max-heap and sorts only the
//! candidate component at each validation — so when the result is much
//! smaller than the community (small α, β), most of the community's
//! edges are never ordered at all. This is where the Fig. 13 crossover
//! between the two algorithms comes from.
//!
//! All working state (heap backing store, inserted-edge set, component
//! tracker, validation buffers) lives in the [`QueryWorkspace`], so a
//! warm workspace expands without heap allocations.

use crate::local::LocalGraph;
use crate::query::peel::{degree_peel_in, weighted_peel_in};
use crate::workspace::{LocalScratch, QueryWorkspace};
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex, Weight};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The expansion factor ε the paper derives as optimal (Section IV-B).
pub const DEFAULT_EPSILON: f64 = 2.0;

/// Max-heap key: weight with total order, ties on edge id for
/// determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapEdge {
    w: Weight,
    le: u32,
}

impl Eq for HeapEdge {}

impl Ord for HeapEdge {
    fn cmp(&self, other: &Self) -> Ordering {
        self.w
            .total_cmp(&other.w)
            .then_with(|| other.le.cmp(&self.le))
    }
}

impl PartialOrd for HeapEdge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `SCS-Expand` with the default ε = 2.
pub fn scs_expand<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    scs_expand_with_epsilon(g, community, q, alpha, beta, DEFAULT_EPSILON)
}

/// [`scs_expand`] with caller-provided reusable scratch.
pub fn scs_expand_in<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
) -> Subgraph<'g> {
    scs_expand_with_options_in(g, community, q, alpha, beta, ExpandOptions::default(), ws)
}

/// Tuning knobs for [`scs_expand_with_options`], used by the ablation
/// study (`ablation_expand` in the bench crate) to quantify what each
/// of the paper's design choices buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandOptions {
    /// Geometric validation factor (> 1); the paper derives ε = 2.
    pub epsilon: f64,
    /// Apply the Lemma 7 edge-count bound before validating.
    pub use_lemma7: bool,
    /// Apply the Lemma 8 degree-census bound before validating.
    pub use_lemma8: bool,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            epsilon: DEFAULT_EPSILON,
            use_lemma7: true,
            use_lemma8: true,
        }
    }
}

/// `SCS-Expand` with an explicit expansion parameter `epsilon > 1`.
///
/// `community` must be `C_{α,β}(q)`; the paper's baseline variant that
/// expands over the whole graph component instead lives in
/// [`crate::query::baseline::scs_baseline`].
pub fn scs_expand_with_epsilon<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    epsilon: f64,
) -> Subgraph<'g> {
    scs_expand_with_options(
        g,
        community,
        q,
        alpha,
        beta,
        ExpandOptions {
            epsilon,
            ..Default::default()
        },
    )
}

/// `SCS-Expand` with full control over the pruning heuristics. Thin
/// wrapper over [`scs_expand_with_options_in`] with a throwaway
/// workspace.
pub fn scs_expand_with_options<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    opts: ExpandOptions,
) -> Subgraph<'g> {
    scs_expand_with_options_in(
        g,
        community,
        q,
        alpha,
        beta,
        opts,
        &mut QueryWorkspace::new(),
    )
}

/// [`scs_expand_with_options`] with caller-provided reusable scratch.
pub fn scs_expand_with_options_in<'g>(
    g: &'g BipartiteGraph,
    community: &Subgraph<'g>,
    q: Vertex,
    alpha: usize,
    beta: usize,
    opts: ExpandOptions,
    ws: &mut QueryWorkspace,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    scs_expand_into(g, community.edges(), q, alpha, beta, opts, ws, &mut out);
    Subgraph::from_edges(g, out)
}

/// Allocation-free `SCS-Expand` over a community given as a sorted
/// edge-id slice; `out` is cleared first and receives the sorted result
/// edges.
#[allow(clippy::too_many_arguments)] // mirrors the wrapper's signature plus scratch
                                     // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn scs_expand_into(
    g: &BipartiteGraph,
    community: &[EdgeId],
    q: Vertex,
    alpha: usize,
    beta: usize,
    opts: ExpandOptions,
    ws: &mut QueryWorkspace,
    out: &mut Vec<EdgeId>,
) {
    let epsilon = opts.epsilon;
    assert!(epsilon > 1.0, "expansion parameter must exceed 1");
    out.clear();
    if community.is_empty() {
        return;
    }
    ws.local.rebuild(g, community);
    ws.fit_local(ws.local.n_vertices(), ws.local.n_edges());
    let QueryWorkspace {
        local: lg,
        scratch: s,
        ..
    } = ws;
    let lq = lg
        .local_of(q)
        .expect("query vertex must belong to its community");
    let (alpha, beta) = (alpha as u32, beta as u32);

    // All-equal weights: the answer is q's component of the input's
    // (α,β)-core. For a genuine C_{α,β}(q) that is the input itself, but
    // SCS-Baseline feeds this function a whole graph component, so peel
    // defensively (with the flat-array kernel — this is the fast path).
    if let Some((lo, hi)) = lg.weight_bounds() {
        if lo.total_cmp(&hi).is_eq() {
            s.subset.clear();
            s.subset.extend(0..lg.n_edges() as u32); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            let subset = std::mem::take(&mut s.subset);
            degree_peel_in(
                lg,
                &subset,
                alpha,
                beta,
                &mut s.alive,
                &mut s.deg,
                &mut s.cascade,
            );
            s.subset = subset;
            if s.deg[lq as usize] < lg.need(lq, alpha, beta) {
                return;
            }
            let LocalScratch {
                alive,
                visited,
                stack,
                out: lout,
                ..
            } = s;
            lg.component_edges_into(lq, alive, visited, stack, lout);
            lg.emit_globals(&s.out, out);
            return;
        }
    }

    // Lazy weight-descending order: O(m) heapify, O(log m) per pop, so a
    // search that stops early never pays for ordering the rest. The heap
    // borrows its backing store from the workspace.
    let mut heap_buf = std::mem::take(&mut s.heap);
    heap_buf.clear();
    // contract-ok: warm workspace scratch; growth is cold
    heap_buf.extend((0..lg.n_edges() as u32).map(|le| HeapEdge {
        w: lg.weight(le),
        le,
    }));
    let mut heap = BinaryHeap::from(heap_buf);
    s.added.ensure(lg.n_edges());
    s.added.clear();
    s.tracker.reset(
        lg.n_vertices(),
        lg.n_upper_local(),
        alpha as usize,
        beta as usize,
    );
    let mut pre_size: u64 = 0;
    let mut last_component_edges: u64 = 0;
    let mut validated = false;

    while let Some(&HeapEdge { w: w_max, .. }) = heap.peek() {
        // Insert the whole maximum-weight group: candidates are only
        // meaningful at group boundaries, where "every edge of weight
        // ≥ f" is present.
        while let Some(&top) = heap.peek() {
            if top.w.total_cmp(&w_max).is_ne() {
                break;
            }
            heap.pop();
            s.added.insert_id(top.le as usize);
            let (a, b) = lg.ends(top.le);
            s.tracker.add_edge(a as usize, b as usize);
        }
        // C* is q's component of G*; skip cheaply when possible.
        if !s.tracker.is_present(lq as usize) {
            continue;
        }
        let c_edges = s.tracker.edges_of(lq as usize);
        if c_edges == last_component_edges {
            continue; // C* unchanged (Algorithm 5 line 10)
        }
        last_component_edges = c_edges;
        if (opts.use_lemma7 && !s.tracker.lemma7_holds(lq as usize))
            || (opts.use_lemma8 && !s.tracker.lemma8_holds(lq as usize))
        {
            continue; // Lemma 7/8 pruning
        }
        if (c_edges as f64) < pre_size as f64 * epsilon {
            continue; // geometric validation schedule
        }
        pre_size = c_edges;
        if validate_in(lg, lq, alpha, beta, s) {
            validated = true;
            break;
        }
    }
    if !validated {
        // Everything added: C* = C_{α,β}(q), which is itself a valid
        // candidate, so the final validation cannot fail.
        let ok = validate_in(lg, lq, alpha, beta, s);
        assert!(ok, "the full community always validates");
    }
    s.heap = heap.into_vec();
    lg.emit_globals(&s.out, out);
}

/// Algorithm 5 lines 16–18: peel a copy of `C*` to its (α,β)-core; if `q`
/// survives, run the Algorithm 4 search on that copy, leaving `R` in
/// `s.out` and returning `true`. Sorting happens here, on `C*` only.
fn validate_in(lg: &LocalGraph, lq: u32, alpha: u32, beta: u32, s: &mut LocalScratch) -> bool {
    {
        let LocalScratch {
            added,
            visited,
            stack,
            subset,
            ..
        } = s;
        lg.component_edges_into(lq, added, visited, stack, subset);
    }
    let c_star = std::mem::take(&mut s.subset);
    degree_peel_in(
        lg,
        &c_star,
        alpha,
        beta,
        &mut s.alive,
        &mut s.deg,
        &mut s.cascade,
    );
    if s.deg[lq as usize] < lg.need(lq, alpha, beta) {
        s.subset = c_star;
        return false;
    }
    let mut order_asc = c_star;
    order_asc.sort_unstable_by(|&a, &b| lg.weight(a).total_cmp(&lg.weight(b)).then(a.cmp(&b)));
    weighted_peel_in(lg, lq, alpha, beta, &order_asc, s);
    s.subset = order_asc;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use crate::query::peel::scs_peel;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure2_matches_peel() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let q = g.upper(2);
        let c = idx.query_community(&g, q, 2, 2);
        let r = scs_expand(&g, &c, q, 2, 2);
        assert_eq!(r.size(), 4);
        assert_eq!(r.min_weight(), Some(13.0));
        assert!(r.same_edges(&scs_peel(&g, &c, q, 2, 2)));
    }

    #[test]
    fn random_graphs_match_peel() {
        let mut rng = StdRng::seed_from_u64(300);
        for trial in 0..4 {
            let g0 = random_bipartite(20, 20, 140 + trial * 10, &mut rng);
            let g = WeightModel::Uniform { lo: 0.0, hi: 1.0 }.apply(&g0, &mut rng);
            let idx = DeltaIndex::build(&g);
            for a in 1..=3 {
                for b in 1..=3 {
                    for qi in 0..6 {
                        let q = g.upper(qi);
                        let c = idx.query_community(&g, q, a, b);
                        if c.is_empty() {
                            continue;
                        }
                        let rp = scs_peel(&g, &c, q, a, b);
                        let re = scs_expand(&g, &c, q, a, b);
                        assert!(
                            re.same_edges(&rp),
                            "α={a} β={b} q={q:?}: expand {} vs peel {} edges",
                            re.size(),
                            rp.size()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reused_workspace_matches_fresh() {
        let mut rng = StdRng::seed_from_u64(302);
        let g0 = random_bipartite(22, 22, 170, &mut rng);
        let g = WeightModel::Uniform { lo: 0.0, hi: 4.0 }.apply(&g0, &mut rng);
        let idx = DeltaIndex::build(&g);
        let mut ws = QueryWorkspace::new();
        for a in 1..=3 {
            for b in 1..=3 {
                for qi in 0..5 {
                    let q = g.upper(qi);
                    let c = idx.query_community(&g, q, a, b);
                    if c.is_empty() {
                        continue;
                    }
                    let fresh = scs_expand(&g, &c, q, a, b);
                    let reused = scs_expand_in(&g, &c, q, a, b, &mut ws);
                    assert!(reused.same_edges(&fresh), "α={a} β={b} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn various_epsilons_agree() {
        let mut rng = StdRng::seed_from_u64(301);
        let g0 = random_bipartite(25, 25, 200, &mut rng);
        let g = WeightModel::Uniform { lo: 0.0, hi: 5.0 }.apply(&g0, &mut rng);
        let idx = DeltaIndex::build(&g);
        let q = g.upper(0);
        let c = idx.query_community(&g, q, 2, 2);
        if c.is_empty() {
            return;
        }
        let base = scs_expand_with_epsilon(&g, &c, q, 2, 2, 2.0);
        for eps in [1.2, 1.5, 3.0, 10.0] {
            let r = scs_expand_with_epsilon(&g, &c, q, 2, 2, eps);
            assert!(r.same_edges(&base), "ε={eps}");
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn epsilon_must_exceed_one() {
        let g = figure2_example();
        let c = Subgraph::empty(&g);
        scs_expand_with_epsilon(&g, &c, g.upper(0), 2, 2, 1.0);
    }

    #[test]
    fn empty_community() {
        let g = figure2_example();
        let r = scs_expand(&g, &Subgraph::empty(&g), g.upper(0), 2, 2);
        assert!(r.is_empty());
    }

    #[test]
    fn heap_edge_ordering_is_total() {
        let a = HeapEdge { w: 1.0, le: 0 };
        let b = HeapEdge { w: 2.0, le: 1 };
        let c = HeapEdge { w: 2.0, le: 2 };
        assert!(b > a);
        assert!(b > c); // ties broken by smaller edge id first
        assert_eq!(b.cmp(&b), Ordering::Equal);
    }
}
