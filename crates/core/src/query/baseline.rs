//! `SCS-Baseline`: the strawman of the paper's Section V-A — expansion
//! that starts from the connected component of `q` in the *whole graph*
//! instead of from `C_{α,β}(q)`, i.e. the two-step framework's first step
//! is skipped. Used as the comparison bar in Fig. 12 / Fig. 13.

use crate::query::expand::{scs_expand_into, ExpandOptions};
use crate::workspace::QueryWorkspace;
use bicore::abcore::abcore_in;
use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};

/// `SCS-Baseline`: computes the significant (α,β)-community of `q` by
/// running the expansion algorithm over the connected component of `q`
/// in `G`. Correct but slow — the search space is the whole component,
/// not the (α,β)-community.
///
/// Thin wrapper over [`scs_baseline_in`] with a throwaway workspace.
pub fn scs_baseline<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
) -> Subgraph<'g> {
    scs_baseline_in(g, q, alpha, beta, &mut QueryWorkspace::new())
}

/// [`scs_baseline`] with caller-provided reusable scratch.
pub fn scs_baseline_in<'g>(
    g: &'g BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    scs_baseline_into(g, q, alpha, beta, ws, &mut out);
    Subgraph::from_edges(g, out)
}

/// Allocation-free `SCS-Baseline`; `out` is cleared first and receives
/// the sorted result edges. The component extraction and the
/// q-in-core guard both run on the graph-sized workspace buffers
/// (flat stamped sets) instead of the old hash-map peel.
// scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
pub fn scs_baseline_into(
    g: &BipartiteGraph,
    q: Vertex,
    alpha: usize,
    beta: usize,
    ws: &mut QueryWorkspace,
    out: &mut Vec<EdgeId>,
) {
    out.clear();
    // The connected component of q in G, by flat DFS.
    ws.base.fit(g);
    ws.base.visited.clear();
    ws.base.queue.clear();
    ws.community.clear();
    {
        let QueryWorkspace {
            base, community, ..
        } = ws;
        let Workspace { visited, queue, .. } = base;
        visited.insert(q); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        queue.push(q.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
        while let Some(xi) = queue.pop() {
            let x = Vertex(xi);
            for (w, e) in g.neighbors_with_edges(x) {
                if g.is_upper(x) {
                    community.push(e); // record each edge from its upper endpoint; contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
                // contract-ok: warm workspace scratch; growth is cold
                if visited.insert(w) {
                    queue.push(w.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
                }
            }
        }
        community.sort_unstable();
    }
    if ws.community.is_empty() {
        return;
    }
    // The expansion machinery tolerates a start graph that is not an
    // (α,β)-core: validation peels candidate components before accepting.
    // The final unconditional validation of the expansion assumes the
    // input community itself qualifies, which is not guaranteed here, so
    // guard: if q is not in the (α,β)-core of G — equivalently, of its
    // component, since peeling never crosses component boundaries — the
    // answer is empty.
    abcore_in(g, alpha, beta, &mut ws.base);
    if ws.base.dead.contains(q) {
        return;
    }
    let community = std::mem::take(&mut ws.community);
    scs_expand_into(
        g,
        &community,
        q,
        alpha,
        beta,
        ExpandOptions::default(),
        ws,
        out,
    );
    ws.community = community;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DeltaIndex;
    use crate::query::peel::scs_peel;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure2_matches_indexed_algorithms() {
        let g = figure2_example();
        let q = g.upper(2);
        let r = scs_baseline(&g, q, 2, 2);
        assert_eq!(r.size(), 4);
        assert_eq!(r.min_weight(), Some(13.0));
    }

    #[test]
    fn random_graphs_match_peel() {
        let mut rng = StdRng::seed_from_u64(500);
        let mut ws = QueryWorkspace::new();
        for trial in 0..3 {
            let g0 = random_bipartite(16, 16, 110 + 10 * trial, &mut rng);
            let g = WeightModel::Uniform { lo: 1.0, hi: 9.0 }.apply(&g0, &mut rng);
            let idx = DeltaIndex::build(&g);
            for a in 1..=3 {
                for b in 1..=3 {
                    for qi in 0..4 {
                        let q = g.upper(qi);
                        let c = idx.query_community(&g, q, a, b);
                        let rb = scs_baseline(&g, q, a, b);
                        if c.is_empty() {
                            assert!(rb.is_empty(), "α={a} β={b} q={q:?}");
                            continue;
                        }
                        let rp = scs_peel(&g, &c, q, a, b);
                        assert!(rb.same_edges(&rp), "α={a} β={b} q={q:?}");
                        // Workspace-reusing form agrees.
                        let rw = scs_baseline_in(&g, q, a, b, &mut ws);
                        assert!(rw.same_edges(&rb), "α={a} β={b} q={q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn query_vertex_outside_any_core() {
        let g = figure2_example();
        // u500 has degree 1: no (2,2)-community.
        let r = scs_baseline(&g, g.upper(499), 2, 2);
        assert!(r.is_empty());
    }

    #[test]
    fn isolated_vertex() {
        let mut b = bigraph::GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.ensure_upper(3);
        let g = b.build().unwrap();
        let r = scs_baseline(&g, g.upper(2), 1, 1);
        assert!(r.is_empty());
    }
}
