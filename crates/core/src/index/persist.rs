//! Binary persistence for the degeneracy-bounded index.
//!
//! Building `Iδ` costs `O(δ·m)`; for repeated query sessions over the
//! same graph it pays to build once and reload. The format is a small
//! little-endian container:
//!
//! ```text
//! magic "SCSIDX1\0" | n_upper u32 | n_lower u32 | m u32 | delta u32
//! then 2·δ levels (α-levels first), each as Level::write_to
//! ```
//!
//! The graph fingerprint (`n_upper`, `n_lower`, `m`) is validated at
//! load time so an index cannot silently be applied to the wrong graph;
//! edge ids are only meaningful relative to the exact graph the index
//! was built from (the deterministic `GraphBuilder` ordering guarantees
//! stability across rebuilds from the same edge list).

use super::delta::DeltaIndex;
use super::level::Level;
use bigraph::BipartiteGraph;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SCSIDX1\0";

fn w32<W: Write>(out: &mut W, x: u32) -> io::Result<()> {
    out.write_all(&x.to_le_bytes())
}

fn r32<R: Read>(inp: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    inp.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serializes `index` (built over `g`) to a writer.
pub fn save_index<W: Write>(g: &BipartiteGraph, index: &DeltaIndex, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    w32(&mut out, g.n_upper() as u32)?;
    w32(&mut out, g.n_lower() as u32)?;
    w32(&mut out, g.n_edges() as u32)?;
    w32(&mut out, index.delta() as u32)?;
    for level in index.alpha_levels.iter().chain(&index.beta_levels) {
        level.write_to(&mut out)?;
    }
    Ok(())
}

/// Loads an index previously written with [`save_index`], validating it
/// against `g`'s fingerprint.
pub fn load_index<R: Read>(g: &BipartiteGraph, mut inp: R) -> io::Result<DeltaIndex> {
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an scs index file"));
    }
    let (nu, nl, m) = (r32(&mut inp)?, r32(&mut inp)?, r32(&mut inp)?);
    if (nu as usize, nl as usize, m as usize) != (g.n_upper(), g.n_lower(), g.n_edges()) {
        return Err(bad("index fingerprint does not match the graph"));
    }
    let delta = r32(&mut inp)? as usize;
    let mut levels: Vec<Level> = Vec::with_capacity(2 * delta);
    for _ in 0..2 * delta {
        levels.push(Level::read_from(&mut inp)?);
    }
    let beta_levels = levels.split_off(delta);
    Ok(DeltaIndex {
        delta,
        alpha_levels: levels,
        beta_levels,
    })
}

/// [`save_index`] to a file path.
pub fn save_index_file<P: AsRef<Path>>(
    g: &BipartiteGraph,
    index: &DeltaIndex,
    path: P,
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save_index(g, index, io::BufWriter::new(f))
}

/// [`load_index`] from a file path.
pub fn load_index_file<P: AsRef<Path>>(g: &BipartiteGraph, path: P) -> io::Result<DeltaIndex> {
    let f = std::fs::File::open(path)?;
    load_index(g, io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip(g: &BipartiteGraph) {
        let index = DeltaIndex::build(g);
        let mut buf = Vec::new();
        save_index(g, &index, &mut buf).unwrap();
        let loaded = load_index(g, buf.as_slice()).unwrap();
        assert_eq!(loaded.delta(), index.delta());
        assert_eq!(loaded.n_entries(), index.n_entries());
        for a in 1..=index.delta() + 1 {
            for b in 1..=index.delta() + 1 {
                for v in g.vertices().step_by(97) {
                    let x = index.query_community(g, v, a, b);
                    let y = loaded.query_community(g, v, a, b);
                    assert!(x.same_edges(&y), "α={a} β={b} {v:?}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_figure2() {
        roundtrip(&figure2_example());
    }

    #[test]
    fn roundtrip_random_weighted() {
        let mut rng = StdRng::seed_from_u64(4242);
        let g0 = random_bipartite(40, 40, 320, &mut rng);
        let g = WeightModel::Uniform { lo: 0.0, hi: 9.0 }.apply(&g0, &mut rng);
        roundtrip(&g);
    }

    #[test]
    fn rejects_wrong_magic() {
        let g = figure2_example();
        let err = load_index(&g, &b"NOTANIDX more bytes here"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = figure2_example();
        let index = DeltaIndex::build(&g);
        let mut buf = Vec::new();
        save_index(&g, &index, &mut buf).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let other = random_bipartite(10, 10, 30, &mut rng);
        let err = load_index(&other, buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn rejects_truncated() {
        let g = figure2_example();
        let index = DeltaIndex::build(&g);
        let mut buf = Vec::new();
        save_index(&g, &index, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_index(&g, buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = figure2_example();
        let index = DeltaIndex::build(&g);
        let dir = std::env::temp_dir().join("scs_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.scsidx");
        save_index_file(&g, &index, &path).unwrap();
        let loaded = load_index_file(&g, &path).unwrap();
        assert_eq!(loaded.delta(), 3);
        std::fs::remove_file(path).ok();
    }
}
