//! The degeneracy-bounded index `Iδ` (Section III-B, Algorithm 3).
//!
//! `Iδ` exploits Lemma 4 — every nonempty (α,β)-core has `min(α,β) ≤ δ` —
//! to store only `2δ` levels: for each τ ≤ δ, the annotated adjacency of
//! the (τ,τ)-core under α-offsets (serving queries with α ≤ β, where
//! α = min) and under β-offsets (serving β < α). Construction is
//! `O(δ·m)` time and the index takes `O(δ·m)` space (Lemmas 5–6), while
//! retrieval of any (α,β)-community stays optimal.

use super::level::{query_level_into, Entry, Level, QueryStats};
use bicore::decompose::{alpha_offsets, beta_offsets};
use bicore::degeneracy::{degeneracy, unipartite_core_numbers};
use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};

/// The degeneracy-bounded index `Iδ = (Iα_δ, Iβ_δ)`.
#[derive(Debug, Clone)]
pub struct DeltaIndex {
    pub(crate) delta: usize,
    /// `Iα_δ[·][τ]`, τ = 1..=δ: entries with `s_a ≥ τ` over the (τ,τ)-core.
    pub(crate) alpha_levels: Vec<Level>,
    /// `Iβ_δ[·][τ]`, τ = 1..=δ: entries with `s_b > τ` over the (τ,τ)-core.
    pub(crate) beta_levels: Vec<Level>,
}

/// Builds the τ-th pair of levels `(Iα_δ[·][τ], Iβ_δ[·][τ])` from fresh
/// offsets. Shared by [`DeltaIndex::build`] and the incremental
/// maintenance in [`crate::index::maintenance`].
pub(crate) fn build_level_pair(
    g: &BipartiteGraph,
    tau: usize,
    core_numbers: &[u32],
) -> (Level, Level) {
    let sa = alpha_offsets(g, tau);
    let sb = beta_offsets(g, tau);
    let mut la = Level::new(g.n_vertices());
    let mut lb = Level::new(g.n_vertices());
    let mut scratch_a: Vec<Entry> = Vec::new();
    let mut scratch_b: Vec<Entry> = Vec::new();
    for v in g.vertices() {
        // v ∈ (τ,τ)-core ⇔ unipartite core number ≥ τ.
        if (core_numbers[v.index()] as usize) < tau {
            continue;
        }
        scratch_a.clear();
        scratch_b.clear();
        for (w, e) in g.neighbors_with_edges(v) {
            let wa = sa[w.index()];
            if wa as usize >= tau {
                scratch_a.push(Entry {
                    nbr: w,
                    edge: e,
                    offset: wa,
                });
            }
            let wb = sb[w.index()];
            if wb as usize > tau {
                scratch_b.push(Entry {
                    nbr: w,
                    edge: e,
                    offset: wb,
                });
            }
        }
        scratch_a.sort_unstable_by_key(|e| std::cmp::Reverse(e.offset));
        scratch_b.sort_unstable_by_key(|e| std::cmp::Reverse(e.offset));
        la.push_vertex(v, sa[v.index()], &scratch_a);
        lb.push_vertex(v, sb[v.index()], &scratch_b);
    }
    (la, lb)
}

impl DeltaIndex {
    /// Builds `Iδ` in `O(δ·m)` time (Algorithm 3).
    pub fn build(g: &BipartiteGraph) -> Self {
        let delta = degeneracy(g);
        let core_numbers = unipartite_core_numbers(g);
        let mut alpha_levels = Vec::with_capacity(delta);
        let mut beta_levels = Vec::with_capacity(delta);
        for tau in 1..=delta {
            let (la, lb) = build_level_pair(g, tau, &core_numbers);
            alpha_levels.push(la);
            beta_levels.push(lb);
        }
        DeltaIndex {
            delta,
            alpha_levels,
            beta_levels,
        }
    }

    /// The degeneracy δ of the indexed graph.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Total adjacency entries stored across both halves.
    pub fn n_entries(&self) -> usize {
        self.alpha_levels
            .iter()
            .chain(&self.beta_levels)
            .map(Level::n_entries)
            .sum()
    }

    /// Heap bytes (Fig. 11 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.alpha_levels
            .iter()
            .chain(&self.beta_levels)
            .map(Level::heap_bytes)
            .sum()
    }

    /// `Qopt`: optimal retrieval of `C_{α,β}(q)` (Algorithm 2 over `Iδ`).
    ///
    /// Dispatch: queries with `α ≤ β` go through `Iα_δ[·][α]` (α is the
    /// min, so α ≤ δ whenever the answer is nonempty); queries with
    /// `β < α` go through `Iβ_δ[·][β]`.
    ///
    /// Thin wrapper over [`Self::query_community_into`] with a throwaway
    /// workspace.
    pub fn query_community<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> Subgraph<'g> {
        self.query_community_with_stats(g, q, alpha, beta).0
    }

    /// [`Self::query_community`] plus touch statistics.
    pub fn query_community_with_stats<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> (Subgraph<'g>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.query_community_into(g, q, alpha, beta, &mut Workspace::new(), &mut out);
        (Subgraph::from_edges(g, out), stats)
    }

    /// [`Self::query_community`] with caller-provided reusable scratch.
    pub fn query_community_in<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
        ws: &mut Workspace,
    ) -> Subgraph<'g> {
        let mut out = Vec::new();
        self.query_community_into(g, q, alpha, beta, ws, &mut out);
        Subgraph::from_edges(g, out)
    }

    /// Allocation-free retrieval: `out` is cleared and receives the
    /// sorted edge ids of `C_{α,β}(q)`; all scratch comes from `ws`.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn query_community_into(
        &self,
        g: &BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
        ws: &mut Workspace,
        out: &mut Vec<EdgeId>,
    ) -> QueryStats {
        assert!(alpha >= 1 && beta >= 1, "degree constraints must be >= 1");
        let mut stats = QueryStats::default();
        out.clear();
        if alpha <= beta {
            if alpha <= self.delta {
                // min(α,β) > δ means the (α,β)-core is empty (Lemma 4).
                query_level_into(
                    g,
                    &self.alpha_levels[alpha - 1],
                    q,
                    beta as u32,
                    ws,
                    out,
                    &mut stats,
                );
            }
        } else if beta <= self.delta {
            query_level_into(
                g,
                &self.beta_levels[beta - 1],
                q,
                alpha as u32,
                ws,
                out,
                &mut stats,
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bicore::abcore::abcore_community;
    use bigraph::builder::figure2_example;
    use bigraph::generators::{complete_biclique, random_bipartite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_online_queries_exhaustively() {
        let mut rng = StdRng::seed_from_u64(200);
        for trial in 0..3 {
            let g = random_bipartite(18, 20, 120 + 15 * trial, &mut rng);
            let idx = DeltaIndex::build(&g);
            let delta = idx.delta();
            for a in 1..=(delta + 2) {
                for b in 1..=(delta + 2) {
                    for v in g.vertices() {
                        let online = abcore_community(&g, v, a, b);
                        let fast = idx.query_community(&g, v, a, b);
                        assert!(
                            fast.same_edges(&online),
                            "α={a} β={b} q={v:?}: {} vs {}",
                            fast.size(),
                            online.size()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn figure2_example_3_3_community() {
        // Example 3 of the paper: C_{3,3}(u1) is the 3×3 biclique
        // {u1,u2,u3} × {v1,v2,v3}.
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        assert_eq!(idx.delta(), 3);
        let c = idx.query_community(&g, g.upper(0), 3, 3);
        assert_eq!(c.size(), 9);
        let (us, ls) = c.layer_vertices();
        assert_eq!(us.len(), 3);
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn figure2_delta_index_is_small() {
        let g = figure2_example();
        let idx = DeltaIndex::build(&g);
        let basic = super::super::basic::BasicIndex::build(&g, bigraph::Side::Upper);
        // The motivating claim of §III-B: Iδ avoids the 999 copies of
        // u1's adjacency that Iα_bs stores.
        assert!(
            idx.n_entries() * 10 < basic.n_entries(),
            "Iδ {} entries vs Iα_bs {}",
            idx.n_entries(),
            basic.n_entries()
        );
    }

    #[test]
    fn optimal_touch_bound() {
        let mut rng = StdRng::seed_from_u64(201);
        let g = random_bipartite(40, 40, 300, &mut rng);
        let idx = DeltaIndex::build(&g);
        for a in 1..=idx.delta() {
            for b in 1..=idx.delta() {
                let (sub, stats) = idx.query_community_with_stats(&g, g.upper(3), a, b);
                if sub.is_empty() {
                    continue;
                }
                let nv = sub.vertices().len();
                assert!(
                    stats.entries_touched <= 2 * sub.size() + nv,
                    "α={a} β={b}: touched {} for {} edges",
                    stats.entries_touched,
                    sub.size()
                );
            }
        }
    }

    #[test]
    fn beta_branch_exercised() {
        // Query with β < α must route through Iβ_δ.
        let g = complete_biclique(6, 4);
        let idx = DeltaIndex::build(&g);
        assert_eq!(idx.delta(), 4);
        // α=4 > β=2 ⇒ uses beta_levels[1].
        let c = idx.query_community(&g, g.upper(0), 4, 2);
        assert_eq!(c.size(), 24);
        // α=5, β=3: all uppers have degree 4 < 5 ⇒ empty.
        let c = idx.query_community(&g, g.upper(0), 5, 3);
        assert!(c.is_empty());
        // α=3 ≤ β=6: uses alpha_levels[2]; lowers have degree 6 ≥ 6 ✓.
        let c = idx.query_community(&g, g.upper(0), 3, 6);
        assert_eq!(c.size(), 24);
    }

    #[test]
    fn beyond_delta_empty() {
        let g = complete_biclique(3, 3);
        let idx = DeltaIndex::build(&g);
        assert_eq!(idx.delta(), 3);
        assert!(idx.query_community(&g, g.upper(0), 4, 4).is_empty());
        assert!(idx.query_community(&g, g.upper(0), 4, 5).is_empty());
        assert!(idx.query_community(&g, g.upper(0), 5, 4).is_empty());
    }
}
