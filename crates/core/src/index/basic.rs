//! The basic indexes `Iα_bs` and `Iβ_bs` (Section III-A, Algorithm 1).
//!
//! `Iα_bs` stores, for every α from 1 to α_max, the annotated adjacency of
//! every vertex in the (α,1)-core, sorted by α-offset descending. With it
//! any (α,β)-community is retrieved in optimal time (Lemma 3). Its flaw —
//! the reason the paper moves on to `Iδ` — is size: a vertex of high
//! degree appears in up to `deg` levels, so the index is `O(α_max·m)`,
//! which explodes on datasets with very large hubs (the paper could not
//! even build it on DUI/EN within its time limit).

use super::level::{query_level, query_level_into, Entry, Level, QueryStats};
use bicore::decompose::{alpha_offsets, beta_offsets};
use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, EdgeId, Side, Subgraph, Vertex};

/// Error returned when construction exceeds an entry budget (the
/// experiment harness uses this to report "did not finish", mirroring the
/// paper's INF bars in Figs. 10–11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Work units spent before giving up (adjacency entries written plus
    /// one `m`-sized offset pass per level).
    pub work_done: usize,
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index construction exceeded budget of {} work units (spent {})",
            self.budget, self.work_done
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A basic index: `Iα_bs` when built with [`Side::Upper`], `Iβ_bs` with
/// [`Side::Lower`].
#[derive(Debug, Clone)]
pub struct BasicIndex {
    side: Side,
    levels: Vec<Level>,
}

impl BasicIndex {
    /// Builds the index without a budget. `O(k_max · m)` time and space,
    /// where `k_max` is the maximum degree on `side`.
    pub fn build(g: &BipartiteGraph, side: Side) -> Self {
        Self::build_with_budget(g, side, usize::MAX).expect("unbounded budget")
    }

    /// Builds the index, aborting once construction work exceeds
    /// `max_work` units (each level costs `m` for its offset pass, plus
    /// one unit per adjacency entry written). This mirrors the paper's
    /// 10⁴-second construction cutoff: the basic indexes "did not
    /// finish" on the hub-heavy datasets in Figs. 10–11.
    pub fn build_with_budget(
        g: &BipartiteGraph,
        side: Side,
        max_work: usize,
    ) -> Result<Self, BudgetExceeded> {
        let k_max = g.max_degree(side);
        let mut levels = Vec::with_capacity(k_max);
        let mut written = 0usize;
        let mut scratch: Vec<Entry> = Vec::new();
        for k in 1..=k_max {
            written += g.n_edges();
            if written > max_work {
                return Err(BudgetExceeded {
                    work_done: written,
                    budget: max_work,
                });
            }
            let off = match side {
                Side::Upper => alpha_offsets(g, k),
                Side::Lower => beta_offsets(g, k),
            };
            let mut level = Level::new(g.n_vertices());
            for v in g.vertices() {
                if off[v.index()] == 0 {
                    continue; // not in the (k,1)-core / (1,k)-core
                }
                scratch.clear();
                for (w, e) in g.neighbors_with_edges(v) {
                    let wo = off[w.index()];
                    if wo >= 1 {
                        scratch.push(Entry {
                            nbr: w,
                            edge: e,
                            offset: wo,
                        });
                    }
                }
                scratch.sort_unstable_by_key(|e| std::cmp::Reverse(e.offset));
                written += scratch.len();
                if written > max_work {
                    return Err(BudgetExceeded {
                        work_done: written,
                        budget: max_work,
                    });
                }
                level.push_vertex(v, off[v.index()], &scratch);
            }
            levels.push(level);
        }
        Ok(BasicIndex { side, levels })
    }

    /// Which side's constraint indexes the levels.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Number of levels (α_max or β_max).
    pub fn k_max(&self) -> usize {
        self.levels.len()
    }

    /// Total adjacency entries stored.
    pub fn n_entries(&self) -> usize {
        self.levels.iter().map(Level::n_entries).sum()
    }

    /// Heap bytes (Fig. 11 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.levels.iter().map(Level::heap_bytes).sum()
    }

    /// Optimal retrieval of `C_{α,β}(q)` (Algorithm 2).
    pub fn query_community<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> Subgraph<'g> {
        self.query_community_with_stats(g, q, alpha, beta).0
    }

    /// [`Self::query_community`] plus touch statistics.
    pub fn query_community_with_stats<'g>(
        &self,
        g: &'g BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
    ) -> (Subgraph<'g>, QueryStats) {
        assert!(alpha >= 1 && beta >= 1, "degree constraints must be >= 1");
        let (k, threshold) = match self.side {
            Side::Upper => (alpha, beta as u32),
            Side::Lower => (beta, alpha as u32),
        };
        let mut stats = QueryStats::default();
        if k == 0 || k > self.levels.len() {
            return (Subgraph::empty(g), stats);
        }
        let sub = query_level(g, &self.levels[k - 1], q, threshold, &mut stats);
        (sub, stats)
    }

    /// Allocation-free retrieval on reusable scratch; `out` is cleared
    /// and receives the sorted edge ids of `C_{α,β}(q)`.
    // scs-contract: no-alloc — kernels draw every buffer from the caller's workspace/arena; warm queries must stay heap-silent.
    pub fn query_community_into(
        &self,
        g: &BipartiteGraph,
        q: Vertex,
        alpha: usize,
        beta: usize,
        ws: &mut Workspace,
        out: &mut Vec<EdgeId>,
    ) -> QueryStats {
        assert!(alpha >= 1 && beta >= 1, "degree constraints must be >= 1");
        let (k, threshold) = match self.side {
            Side::Upper => (alpha, beta as u32),
            Side::Lower => (beta, alpha as u32),
        };
        let mut stats = QueryStats::default();
        out.clear();
        if k >= 1 && k <= self.levels.len() {
            query_level_into(g, &self.levels[k - 1], q, threshold, ws, out, &mut stats);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bicore::abcore::abcore_community;
    use bigraph::builder::figure2_example;
    use bigraph::generators::random_bipartite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_sides_match_online_queries() {
        let mut rng = StdRng::seed_from_u64(100);
        for trial in 0..3 {
            let g = random_bipartite(20, 22, 130 + trial * 10, &mut rng);
            let ia = BasicIndex::build(&g, Side::Upper);
            let ib = BasicIndex::build(&g, Side::Lower);
            assert_eq!(ia.k_max(), g.max_degree(Side::Upper));
            assert_eq!(ib.k_max(), g.max_degree(Side::Lower));
            for a in 1..=5 {
                for b in 1..=5 {
                    for qi in [0usize, 5, 19] {
                        let q = g.upper(qi);
                        let online = abcore_community(&g, q, a, b);
                        assert!(ia.query_community(&g, q, a, b).same_edges(&online));
                        assert!(ib.query_community(&g, q, a, b).same_edges(&online));
                        let ql = g.lower(qi);
                        let online = abcore_community(&g, ql, a, b);
                        assert!(ia.query_community(&g, ql, a, b).same_edges(&online));
                        assert!(ib.query_community(&g, ql, a, b).same_edges(&online));
                    }
                }
            }
        }
    }

    #[test]
    fn optimal_touch_bound() {
        let mut rng = StdRng::seed_from_u64(101);
        let g = random_bipartite(40, 40, 320, &mut rng);
        let ia = BasicIndex::build(&g, Side::Upper);
        for a in 1..=4 {
            for b in 1..=4 {
                let q = g.upper(0);
                let (sub, stats) = ia.query_community_with_stats(&g, q, a, b);
                if sub.is_empty() {
                    continue;
                }
                let n_vertices = sub.vertices().len();
                // Each edge is seen from both endpoints, plus at most one
                // over-threshold probe per visited vertex.
                assert!(
                    stats.entries_touched <= 2 * sub.size() + n_vertices,
                    "α={a} β={b}: touched {} > 2·{} + {}",
                    stats.entries_touched,
                    sub.size(),
                    n_vertices
                );
                assert_eq!(stats.result_edges, sub.size());
            }
        }
    }

    #[test]
    fn figure2_alpha_index_blows_up_but_answers() {
        let g = figure2_example();
        let ia = BasicIndex::build(&g, Side::Upper);
        // u1 has degree 999, so Iα_bs has 999 levels.
        assert_eq!(ia.k_max(), 999);
        let c = ia.query_community(&g, g.upper(2), 2, 2);
        assert_eq!(c.size(), 13);
        // The index stores ~999 copies of v1's adjacency: huge.
        assert!(ia.n_entries() > 500_000);
    }

    #[test]
    fn budget_aborts() {
        let g = figure2_example();
        let err = BasicIndex::build_with_budget(&g, Side::Upper, 10_000).unwrap_err();
        assert!(err.work_done > 10_000);
        assert_eq!(err.budget, 10_000);
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    fn query_beyond_kmax_is_empty() {
        let mut rng = StdRng::seed_from_u64(102);
        let g = random_bipartite(10, 10, 40, &mut rng);
        let ia = BasicIndex::build(&g, Side::Upper);
        let c = ia.query_community(&g, g.upper(0), ia.k_max() + 1, 1);
        assert!(c.is_empty());
    }
}
