//! Shared storage and query kernel for the index family.
//!
//! Both the basic indexes (`Iα_bs`, `Iβ_bs`) and the degeneracy-bounded
//! index (`Iδ`) are collections of *levels*: for one fixed constraint
//! value they store, per member vertex, an adjacency list annotated with
//! the neighbors' offsets and sorted by offset descending. Algorithm 2 of
//! the paper runs on a level: BFS from the query vertex, scanning each
//! list only down to the first entry below the query threshold — which is
//! what makes retrieval time linear in the result size.

use bigraph::workspace::Workspace;
use bigraph::{BipartiteGraph, EdgeId, Subgraph, Vertex};

/// One annotated adjacency entry of an index level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    /// The neighbor vertex.
    pub nbr: Vertex,
    /// Global edge id of the `(owner, nbr)` edge (weights are looked up
    /// through it, instead of duplicating them in the index).
    pub edge: EdgeId,
    /// The neighbor's offset at this level's fixed constraint.
    pub offset: u32,
}

/// Index storage for one fixed constraint value: per member vertex, its
/// own offset plus its annotated adjacency sorted by offset descending.
///
/// Lookup is O(1) through a dense vertex→slot table; the table costs
/// `4n` bytes per level, negligible next to the entry storage, and keeps
/// the BFS of Algorithm 2 free of hashing and binary search.
#[derive(Debug, Clone, Default)]
pub(crate) struct Level {
    /// Dense vertex → slot map (`u32::MAX` = not a member); length n.
    slot_of: Vec<u32>,
    /// Member vertices, sorted ascending.
    verts: Vec<Vertex>,
    /// Offset of each member itself (parallel to `verts`).
    own_offset: Vec<u32>,
    /// CSR starts into `entries` (length `verts.len() + 1`).
    starts: Vec<u32>,
    /// Annotated adjacency entries, each vertex's slice sorted by
    /// `offset` descending.
    entries: Vec<Entry>,
}

impl Level {
    /// New level over a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Level {
            slot_of: vec![u32::MAX; n],
            ..Default::default()
        }
    }

    /// Streaming constructor; vertices must be pushed in ascending id
    /// order and each entry list must already be sorted by offset
    /// descending.
    pub fn push_vertex(&mut self, v: Vertex, own_offset: u32, entries: &[Entry]) {
        debug_assert!(self.verts.last().is_none_or(|&p| p < v));
        debug_assert!(entries.windows(2).all(|w| w[0].offset >= w[1].offset));
        if self.starts.is_empty() {
            self.starts.push(0);
        }
        self.slot_of[v.index()] = self.verts.len() as u32;
        self.verts.push(v);
        self.own_offset.push(own_offset);
        self.entries.extend_from_slice(entries);
        self.starts.push(self.entries.len() as u32);
    }

    /// Rewrites every stored edge id through `map` (old id → new id).
    /// Used by index maintenance after the graph's edge ids shift; a
    /// level that is only remapped must not reference a removed edge.
    pub fn remap_edges(&mut self, map: &[Option<EdgeId>]) {
        for e in &mut self.entries {
            e.edge = map[e.edge.index()].expect("untouched level cannot reference a removed edge");
        }
    }

    /// Looks up a vertex: `(own offset, annotated adjacency)`. O(1).
    pub fn lookup(&self, v: Vertex) -> Option<(u32, &[Entry])> {
        let i = *self.slot_of.get(v.index())?;
        if i == u32::MAX {
            return None;
        }
        let i = i as usize;
        let range = self.starts[i] as usize..self.starts[i + 1] as usize;
        Some((self.own_offset[i], &self.entries[range]))
    }

    /// Number of member vertices.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn n_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of stored adjacency entries.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Heap bytes (index size accounting for Fig. 11).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slot_of.len() * size_of::<u32>()
            + self.verts.len() * size_of::<Vertex>()
            + self.own_offset.len() * size_of::<u32>()
            + self.starts.len() * size_of::<u32>()
            + self.entries.len() * size_of::<Entry>()
    }
}

impl Level {
    /// Serializes the level as little-endian u32 words (see
    /// [`crate::index::persist`] for the container format).
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        let w32 = |out: &mut W, x: u32| out.write_all(&x.to_le_bytes());
        w32(out, self.slot_of.len() as u32)?;
        w32(out, self.verts.len() as u32)?;
        w32(out, self.entries.len() as u32)?;
        for (v, &own) in self.verts.iter().zip(&self.own_offset) {
            w32(out, v.0)?;
            w32(out, own)?;
        }
        for &s in &self.starts {
            w32(out, s)?;
        }
        for e in &self.entries {
            w32(out, e.nbr.0)?;
            w32(out, e.edge.0)?;
            w32(out, e.offset)?;
        }
        Ok(())
    }

    /// Inverse of [`Self::write_to`].
    pub fn read_from<R: std::io::Read>(inp: &mut R) -> std::io::Result<Level> {
        fn r32<R: std::io::Read>(inp: &mut R) -> std::io::Result<u32> {
            let mut b = [0u8; 4];
            inp.read_exact(&mut b)?;
            Ok(u32::from_le_bytes(b))
        }
        let n = r32(inp)? as usize;
        let n_verts = r32(inp)? as usize;
        let n_entries = r32(inp)? as usize;
        let mut level = Level::new(n);
        let mut verts = Vec::with_capacity(n_verts);
        let mut own = Vec::with_capacity(n_verts);
        for _ in 0..n_verts {
            verts.push(Vertex(r32(inp)?));
            own.push(r32(inp)?);
        }
        let n_starts = if n_verts == 0 { 0 } else { n_verts + 1 };
        let mut starts = Vec::with_capacity(n_starts);
        for _ in 0..n_starts {
            starts.push(r32(inp)?);
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            entries.push(Entry {
                nbr: Vertex(r32(inp)?),
                edge: EdgeId(r32(inp)?),
                offset: r32(inp)?,
            });
        }
        for (i, (&v, &o)) in verts.iter().zip(&own).enumerate() {
            let range = starts[i] as usize..starts[i + 1] as usize;
            let slice = entries.get(range).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt level CSR")
            })?;
            if v.index() >= n {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "vertex id out of range",
                ));
            }
            level.push_vertex(v, o, slice);
        }
        Ok(level)
    }
}

/// Touch statistics for the optimality assertions and Fig. 8 analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Index entries inspected (including the one probe past the
    /// threshold per scanned list).
    pub entries_touched: usize,
    /// Edges of the resulting community.
    pub result_edges: usize,
}

/// Algorithm 2: retrieves the community of `q` at `threshold` from a
/// level, in `O(size(result))` time.
///
/// The caller picks the level and threshold according to the index
/// dispatch rule (`Iα_bs[·][α]` with threshold β, `Iβ_δ[·][β]` with
/// threshold α, …). Entries are scanned in offset-descending order and
/// the scan stops at the first entry below the threshold, so only result
/// edges (plus one probe per vertex) are touched.
pub(crate) fn query_level<'g>(
    g: &'g BipartiteGraph,
    level: &Level,
    q: Vertex,
    threshold: u32,
    stats: &mut QueryStats,
) -> Subgraph<'g> {
    let mut out = Vec::new();
    query_level_into(
        g,
        level,
        q,
        threshold,
        &mut Workspace::new(),
        &mut out,
        stats,
    );
    Subgraph::from_edges(g, out)
}

/// [`query_level`] on reusable scratch: the epoch-stamped visited set
/// replaces the per-query `vec![false; n]` bitmap (whose O(n) memset
/// dominated small queries), and `out` receives the sorted community
/// edges (cleared first). Clobbers `ws.visited` and `ws.queue`.
pub(crate) fn query_level_into(
    g: &BipartiteGraph,
    level: &Level,
    q: Vertex,
    threshold: u32,
    ws: &mut Workspace,
    out: &mut Vec<EdgeId>,
    stats: &mut QueryStats,
) {
    out.clear();
    let Some((own, _)) = level.lookup(q) else {
        return;
    };
    if own < threshold {
        return;
    }
    ws.fit(g);
    ws.visited.clear();
    ws.queue.clear();
    let Workspace { visited, queue, .. } = ws;
    visited.insert(q); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    queue.push(q.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
    while let Some(ui) = queue.pop() {
        let u = Vertex(ui);
        let (_, list) = level
            .lookup(u)
            .expect("traversal only reaches vertices stored in the level");
        for entry in list {
            stats.entries_touched += 1;
            if entry.offset < threshold {
                break; // sorted descending: nothing further qualifies
            }
            if !g.is_upper(u) {
                out.push(entry.edge); // record each edge once, from its lower endpoint; contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
            // contract-ok: warm workspace scratch; growth is cold
            if visited.insert(entry.nbr) {
                queue.push(entry.nbr.0); // contract-ok: workspace scratch retains warm capacity across queries; growth is cold (alloc-gated)
            }
        }
    }
    stats.result_edges = out.len();
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    #[test]
    fn push_and_lookup() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build().unwrap();
        let e0 = g.find_edge(g.upper(0), g.lower(0)).unwrap();
        let e1 = g.find_edge(g.upper(0), g.lower(1)).unwrap();
        let mut level = Level::new(g.n_vertices());
        level.push_vertex(
            g.upper(0),
            2,
            &[
                Entry {
                    nbr: g.lower(0),
                    edge: e0,
                    offset: 5,
                },
                Entry {
                    nbr: g.lower(1),
                    edge: e1,
                    offset: 3,
                },
            ],
        );
        level.push_vertex(
            g.lower(0),
            5,
            &[Entry {
                nbr: g.upper(0),
                edge: e0,
                offset: 2,
            }],
        );
        let (own, list) = level.lookup(g.upper(0)).unwrap();
        assert_eq!(own, 2);
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].offset, 5);
        assert!(level.lookup(g.lower(1)).is_none());
        assert_eq!(level.n_vertices(), 2);
        assert_eq!(level.n_entries(), 3);
        assert!(level.heap_bytes() > 0);
    }

    #[test]
    fn query_respects_threshold_and_own_offset() {
        // Path u0 - l0 - u1, offsets chosen so that threshold 2 excludes u1.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        b.add_edge(1, 0, 1.0);
        b.ensure_lower(1); // extra isolated lower vertex, absent from the level
        let g = b.build().unwrap();
        let e00 = g.find_edge(g.upper(0), g.lower(0)).unwrap();
        let e10 = g.find_edge(g.upper(1), g.lower(0)).unwrap();
        let mut level = Level::new(g.n_vertices());
        level.push_vertex(
            g.upper(0),
            2,
            &[Entry {
                nbr: g.lower(0),
                edge: e00,
                offset: 2,
            }],
        );
        level.push_vertex(
            g.upper(1),
            1,
            &[Entry {
                nbr: g.lower(0),
                edge: e10,
                offset: 2,
            }],
        );
        level.push_vertex(
            g.lower(0),
            2,
            &[
                Entry {
                    nbr: g.upper(0),
                    edge: e00,
                    offset: 2,
                },
                Entry {
                    nbr: g.upper(1),
                    edge: e10,
                    offset: 1,
                },
            ],
        );
        let mut stats = QueryStats::default();
        let r = query_level(&g, &level, g.upper(0), 2, &mut stats);
        assert_eq!(r.size(), 1);
        assert!(r.contains_vertex(g.lower(0)));
        assert!(!r.contains_vertex(g.upper(1)));
        // Low-offset query vertex short-circuits.
        let r = query_level(&g, &level, g.upper(1), 2, &mut Default::default());
        assert!(r.is_empty());
        // Unknown vertex short-circuits.
        let r = query_level(&g, &level, g.lower(1), 1, &mut Default::default());
        assert!(r.is_empty());
        // Threshold 1 returns everything.
        let r = query_level(&g, &level, g.upper(0), 1, &mut Default::default());
        assert_eq!(r.size(), 2);
    }
}
