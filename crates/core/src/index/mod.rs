//! Index structures for optimal retrieval of (α,β)-communities
//! (Section III of the paper).

pub(crate) mod level;

pub mod basic;
pub mod delta;
pub mod maintenance;
pub mod persist;

pub use basic::{BasicIndex, BudgetExceeded};
pub use delta::DeltaIndex;
pub use level::QueryStats;
pub use maintenance::DynamicIndex;
pub use persist::{load_index, load_index_file, save_index, save_index_file};
