//! Dynamic maintenance of `Iδ` under edge insertions and removals
//! (Section III-B, "Discussion of index maintenance").
//!
//! The paper's key observation is that an update to edge `(u, v)` can
//! only change offsets at levels where the edge itself can participate in
//! a core: for the α-half that means `τ ≤ deg(u)` (the upper endpoint
//! must satisfy its own constraint) and for the β-half `τ ≤ deg(v)`. All
//! other levels are untouched, so an update refreshes only
//! `O(deg(u) + deg(v))` of the `2δ` levels — plus at most one level when
//! δ itself grows or shrinks. Within a refreshed level we recompute
//! offsets with the `O(m)` decomposition kernel; the paper further
//! localizes this to the affected communities (its `S⁺`/`S⁻` sets),
//! which changes constants but not the level-selection logic — DESIGN.md
//! records this substitution.
//!
//! Correctness is therefore easy to state: after every update the index
//! is *identical* to a fresh [`DeltaIndex::build`] on the new graph
//! (property-tested in `tests/property_invariants.rs`).

use super::delta::{build_level_pair, DeltaIndex};
use bicore::degeneracy::{degeneracy, unipartite_core_numbers};
use bigraph::{BipartiteGraph, DuplicatePolicy, GraphBuilder, Subgraph, Vertex, Weight};
use std::fmt;

/// Errors from [`DynamicIndex`] updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// Insertion of an already-present edge.
    EdgeExists { upper: usize, lower: usize },
    /// Removal of a missing edge.
    EdgeMissing { upper: usize, lower: usize },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::EdgeExists { upper, lower } => {
                write!(f, "edge (u{upper}, l{lower}) already exists")
            }
            UpdateError::EdgeMissing { upper, lower } => {
                write!(f, "edge (u{upper}, l{lower}) does not exist")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A graph paired with its `Iδ` index, kept consistent under edge
/// insertions and removals.
#[derive(Debug, Clone)]
pub struct DynamicIndex {
    graph: BipartiteGraph,
    index: DeltaIndex,
}

impl DynamicIndex {
    /// Builds the initial index.
    pub fn new(graph: BipartiteGraph) -> Self {
        let index = DeltaIndex::build(&graph);
        DynamicIndex { graph, index }
    }

    /// The current graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The current index (always consistent with [`Self::graph`]).
    pub fn index(&self) -> &DeltaIndex {
        &self.index
    }

    /// A point-in-time [`crate::CommunitySearch`] over the current graph
    /// and index, cloned rather than rebuilt (no `O(δ·m)` work). This is
    /// the hand-off the `scs-service` epoch-swap path uses: maintain
    /// updates here, snapshot, and install the snapshot into the running
    /// query engine.
    pub fn snapshot(&self) -> crate::CommunitySearch {
        crate::CommunitySearch::from_parts(self.graph.clone(), self.index.clone())
    }

    /// Inserts edge `(upper, lower)` with weight `w` and repairs the
    /// index incrementally.
    pub fn insert_edge(
        &mut self,
        upper: usize,
        lower: usize,
        w: Weight,
    ) -> Result<(), UpdateError> {
        if upper < self.graph.n_upper()
            && lower < self.graph.n_lower()
            && self
                .graph
                .has_edge(self.graph.upper(upper), self.graph.lower(lower))
        {
            return Err(UpdateError::EdgeExists { upper, lower });
        }
        let new_graph = self.rebuild_graph(Some((upper, lower, w)), None);
        self.repair(new_graph, upper, lower);
        Ok(())
    }

    /// Removes edge `(upper, lower)`, returning its weight, and repairs
    /// the index incrementally.
    pub fn remove_edge(&mut self, upper: usize, lower: usize) -> Result<Weight, UpdateError> {
        if upper >= self.graph.n_upper() || lower >= self.graph.n_lower() {
            return Err(UpdateError::EdgeMissing { upper, lower });
        }
        let (u, l) = (self.graph.upper(upper), self.graph.lower(lower));
        let Some(e) = self.graph.find_edge(u, l) else {
            return Err(UpdateError::EdgeMissing { upper, lower });
        };
        let w = self.graph.weight(e);
        let new_graph = self.rebuild_graph(None, Some((upper, lower)));
        self.repair(new_graph, upper, lower);
        Ok(w)
    }

    /// Step-1 query on the maintained index.
    pub fn query_community(&self, q: Vertex, alpha: usize, beta: usize) -> Subgraph<'_> {
        self.index.query_community(&self.graph, q, alpha, beta)
    }

    /// Full significant-community query on the maintained index.
    pub fn significant_community(
        &self,
        q: Vertex,
        alpha: usize,
        beta: usize,
        algorithm: crate::Algorithm,
    ) -> Subgraph<'_> {
        let c = self.query_community(q, alpha, beta);
        match algorithm {
            crate::Algorithm::Baseline => crate::query::scs_baseline(&self.graph, q, alpha, beta),
            crate::Algorithm::Expand => crate::query::scs_expand(&self.graph, &c, q, alpha, beta),
            crate::Algorithm::Binary => crate::query::scs_binary(&self.graph, &c, q, alpha, beta),
            crate::Algorithm::Peel | crate::Algorithm::Auto => {
                crate::query::scs_peel(&self.graph, &c, q, alpha, beta)
            }
        }
    }

    /// Rebuilds the CSR with one edge added and/or removed. `O(n + m)` —
    /// the storage is immutable by design; the *index* repair below is
    /// what the incremental logic optimizes.
    fn rebuild_graph(
        &self,
        insert: Option<(usize, usize, Weight)>,
        remove: Option<(usize, usize)>,
    ) -> BipartiteGraph {
        let g = &self.graph;
        let mut b = GraphBuilder::with_policy(DuplicatePolicy::Error);
        b.ensure_upper(g.n_upper().saturating_sub(1));
        b.ensure_lower(g.n_lower().saturating_sub(1));
        for e in g.edge_ids() {
            let (u, l) = g.endpoints(e);
            let (ui, li) = (g.local_index(u), g.local_index(l));
            if remove == Some((ui, li)) {
                continue;
            }
            b.add_edge(ui, li, g.weight(e));
        }
        if let Some((u, l, w)) = insert {
            b.add_edge(u, l, w);
        }
        b.build().expect("update preserves well-formedness")
    }

    /// Refreshes exactly the levels that the update to `(upper, lower)`
    /// can affect.
    fn repair(&mut self, new_graph: BipartiteGraph, upper: usize, lower: usize) {
        let old_delta = self.index.delta;
        let new_delta = degeneracy(&new_graph);
        let core_numbers = unipartite_core_numbers(&new_graph);

        // Degrees on both old and new graph bound the affected levels:
        // the edge can participate in a (τ,·)-core only while its upper
        // endpoint can satisfy τ, and in a (·,τ)-core only while its
        // lower endpoint can. Taking the max of old/new degree covers
        // both insertion (new degree is larger) and removal (old degree
        // is larger).
        let u_old = self.graph.upper(upper);
        let l_old = self.graph.lower(lower);
        let deg_u = self
            .graph
            .degree(u_old)
            .max(new_graph.degree(new_graph.upper(upper)));
        let deg_l = self
            .graph
            .degree(l_old)
            .max(new_graph.degree(new_graph.lower(lower)));
        // α-levels τ ≤ min(deg(u), δ) can change; likewise β-levels with
        // deg(v). A level pair is stored jointly, so refresh the union.
        let affected = deg_u.max(deg_l).min(new_delta);

        // Rebuilding the CSR renumbers edges, so levels that keep their
        // offsets still need their stored edge ids rewritten.
        let mut old_to_new: Vec<Option<bigraph::EdgeId>> = Vec::with_capacity(self.graph.n_edges());
        for e in self.graph.edge_ids() {
            let (u, l) = self.graph.endpoints(e);
            old_to_new.push(new_graph.find_edge(u, l));
        }

        self.index.alpha_levels.truncate(new_delta);
        self.index.beta_levels.truncate(new_delta);
        for tau in 1..=new_delta {
            let out_of_range = tau > old_delta; // δ grew: must build fresh
            if !out_of_range && tau > affected {
                // Offsets provably untouched; only edge ids shift. An
                // untouched level cannot contain the updated edge itself
                // (that would require τ ≤ deg of its endpoints ≤ affected).
                self.index.alpha_levels[tau - 1].remap_edges(&old_to_new);
                self.index.beta_levels[tau - 1].remap_edges(&old_to_new);
                continue;
            }
            let (la, lb) = build_level_pair(&new_graph, tau, &core_numbers);
            if tau <= self.index.alpha_levels.len() {
                self.index.alpha_levels[tau - 1] = la;
                self.index.beta_levels[tau - 1] = lb;
            } else {
                self.index.alpha_levels.push(la);
                self.index.beta_levels.push(lb);
            }
        }
        self.index.delta = new_delta;
        self.graph = new_graph;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generators::random_bipartite;
    use bigraph::weights::WeightModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Compares every query answer of the maintained index against a
    /// fresh build.
    fn assert_index_consistent(dyn_idx: &DynamicIndex) {
        let g = dyn_idx.graph();
        let fresh = DeltaIndex::build(g);
        assert_eq!(dyn_idx.index().delta(), fresh.delta(), "δ mismatch");
        let delta = fresh.delta();
        for a in 1..=(delta + 1) {
            for b in 1..=(delta + 1) {
                for v in g.vertices() {
                    let maintained = dyn_idx.index().query_community(g, v, a, b);
                    let rebuilt = fresh.query_community(g, v, a, b);
                    assert!(
                        maintained.same_edges(&rebuilt),
                        "divergence at α={a} β={b} q={v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn insertions_keep_index_fresh() {
        let mut rng = StdRng::seed_from_u64(600);
        let g0 = random_bipartite(10, 10, 35, &mut rng);
        let g = WeightModel::Uniform { lo: 0.0, hi: 1.0 }.apply(&g0, &mut rng);
        let mut dyn_idx = DynamicIndex::new(g);
        for _ in 0..12 {
            let u = rng.gen_range(0..10);
            let l = rng.gen_range(0..10);
            let gref = dyn_idx.graph();
            if gref.has_edge(gref.upper(u), gref.lower(l)) {
                continue;
            }
            dyn_idx.insert_edge(u, l, rng.gen_range(0.0..1.0)).unwrap();
            assert_index_consistent(&dyn_idx);
        }
    }

    #[test]
    fn removals_keep_index_fresh() {
        let mut rng = StdRng::seed_from_u64(601);
        let g0 = random_bipartite(10, 10, 50, &mut rng);
        let g = WeightModel::Uniform { lo: 0.0, hi: 1.0 }.apply(&g0, &mut rng);
        let mut dyn_idx = DynamicIndex::new(g);
        for _ in 0..12 {
            let gref = dyn_idx.graph();
            if gref.n_edges() == 0 {
                break;
            }
            let e = bigraph::EdgeId(rng.gen_range(0..gref.n_edges()) as u32);
            let (u, l) = gref.endpoints(e);
            let (ui, li) = (gref.local_index(u), gref.local_index(l));
            dyn_idx.remove_edge(ui, li).unwrap();
            assert_index_consistent(&dyn_idx);
        }
    }

    #[test]
    fn delta_growth_and_shrink() {
        // Start with a 2x2 biclique (δ=2), grow it to 3x3 (δ=3), then
        // shrink back.
        let mut b = GraphBuilder::new();
        for u in 0..2 {
            for l in 0..2 {
                b.add_edge(u, l, 1.0 + (u + l) as f64);
            }
        }
        b.ensure_upper(2);
        b.ensure_lower(2);
        let mut dyn_idx = DynamicIndex::new(b.build().unwrap());
        assert_eq!(dyn_idx.index().delta(), 2);
        for (u, l) in [(0, 2), (1, 2), (2, 0), (2, 1), (2, 2)] {
            dyn_idx.insert_edge(u, l, 5.0).unwrap();
        }
        assert_eq!(dyn_idx.index().delta(), 3);
        assert_index_consistent(&dyn_idx);
        dyn_idx.remove_edge(2, 2).unwrap();
        assert_eq!(dyn_idx.index().delta(), 2);
        assert_index_consistent(&dyn_idx);
    }

    #[test]
    fn update_errors() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0, 1.0);
        let mut dyn_idx = DynamicIndex::new(b.build().unwrap());
        assert_eq!(
            dyn_idx.insert_edge(0, 0, 2.0).unwrap_err(),
            UpdateError::EdgeExists { upper: 0, lower: 0 }
        );
        assert_eq!(
            dyn_idx.remove_edge(0, 5).unwrap_err(),
            UpdateError::EdgeMissing { upper: 0, lower: 5 }
        );
        assert_eq!(dyn_idx.remove_edge(0, 0).unwrap(), 1.0);
        assert_eq!(dyn_idx.graph().n_edges(), 0);
        assert_eq!(dyn_idx.index().delta(), 0);
    }

    #[test]
    fn queries_after_updates() {
        let mut b = GraphBuilder::new();
        for u in 0..3 {
            for l in 0..3 {
                b.add_edge(u, l, 4.0);
            }
        }
        let mut dyn_idx = DynamicIndex::new(b.build().unwrap());
        let q = dyn_idx.graph().upper(0);
        assert_eq!(dyn_idx.query_community(q, 3, 3).size(), 9);
        dyn_idx.remove_edge(2, 2).unwrap();
        let q = dyn_idx.graph().upper(0);
        assert!(dyn_idx.query_community(q, 3, 3).is_empty());
        assert_eq!(dyn_idx.query_community(q, 2, 2).size(), 8);
        let r = dyn_idx.significant_community(q, 2, 2, crate::Algorithm::Peel);
        assert_eq!(r.size(), 8); // all weights equal
    }
}
