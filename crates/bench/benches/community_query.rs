//! Criterion micro-benchmark: (α,β)-community retrieval (statistical
//! version of Fig. 8) — Qo vs Qv vs Qopt at α = β = 0.7δ.

use bicore::abcore::abcore_community;
use bicore::bicore_index::BicoreIndex;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::DeltaIndex;
use scs_bench::{default_params, load_dataset, Config};

fn bench_community_query(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.15,
        seed: 42,
        n_queries: 0,
    };
    let mut group = c.benchmark_group("community_query");
    group.sample_size(20);
    for name in ["BS", "SO", "ML"] {
        let g = load_dataset(&cfg, name);
        let iv = BicoreIndex::build(&g);
        let id = DeltaIndex::build(&g);
        let t = default_params(id.delta());
        let mut rng = StdRng::seed_from_u64(7);
        let queries = random_core_queries(&g, t, t, 16, &mut rng);
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("Qo", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    std::hint::black_box(abcore_community(&g, q, t, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("Qv", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    std::hint::black_box(iv.query_community(&g, q, t, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("Qopt", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    std::hint::black_box(id.query_community(&g, q, t, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_community_query);
criterion_main!(benches);
