//! Criterion micro-benchmark: index construction (statistical version of
//! Fig. 10) — Iv vs Iδ vs the basic indexes on small dataset analogues.

use bicore::bicore_index::BicoreIndex;
use bigraph::Side;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scs::{BasicIndex, DeltaIndex};
use scs_bench::{load_dataset, Config};

fn bench_index_build(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.08,
        seed: 42,
        n_queries: 0,
    };
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for name in ["BS", "SO", "ML"] {
        let g = load_dataset(&cfg, name);
        group.bench_with_input(BenchmarkId::new("Iv", name), &g, |b, g| {
            b.iter(|| std::hint::black_box(BicoreIndex::build(g)))
        });
        group.bench_with_input(BenchmarkId::new("Idelta", name), &g, |b, g| {
            b.iter(|| std::hint::black_box(DeltaIndex::build(g)))
        });
        // The basic indexes get a work budget so hub-heavy analogues
        // don't stall the run; a budget error still measures the work.
        let budget = g.n_edges() * 60;
        group.bench_with_input(BenchmarkId::new("Ia_bs", name), &g, |b, g| {
            b.iter(|| {
                let _ = std::hint::black_box(BasicIndex::build_with_budget(g, Side::Upper, budget));
            })
        });
        group.bench_with_input(BenchmarkId::new("Ib_bs", name), &g, |b, g| {
            b.iter(|| {
                let _ = std::hint::black_box(BasicIndex::build_with_budget(g, Side::Lower, budget));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
