//! Criterion micro-benchmark: significant community extraction
//! (statistical version of Fig. 12) — baseline vs peel vs expand vs
//! binary at α = β = 0.7δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::{scs_baseline, scs_binary, scs_expand, scs_peel};
use scs::DeltaIndex;
use scs_bench::{default_params, load_dataset, Config};

fn bench_scs_query(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.12,
        seed: 42,
        n_queries: 0,
    };
    let mut group = c.benchmark_group("scs_query");
    group.sample_size(10);
    for name in ["BS", "ML"] {
        let g = load_dataset(&cfg, name);
        let id = DeltaIndex::build(&g);
        let t = default_params(id.delta());
        let mut rng = StdRng::seed_from_u64(7);
        let queries = random_core_queries(&g, t, t, 8, &mut rng);
        if queries.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("baseline", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    std::hint::black_box(scs_baseline(&g, q, t, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("peel", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    let cm = id.query_community(&g, q, t, t);
                    std::hint::black_box(scs_peel(&g, &cm, q, t, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("expand", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    let cm = id.query_community(&g, q, t, t);
                    std::hint::black_box(scs_expand(&g, &cm, q, t, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("binary", name), &queries, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    let cm = id.query_community(&g, q, t, t);
                    std::hint::black_box(scs_binary(&g, &cm, q, t, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scs_query);
criterion_main!(benches);
