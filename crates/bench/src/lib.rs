//! Shared harness for the experiment reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's Section V on the synthetic dataset analogues (see
//! `datasets::catalog` and DESIGN.md §6). This library provides the
//! common plumbing: dataset loading with a global scale knob, timing
//! helpers, and fixed-width table printing.
//!
//! Environment knobs:
//! * `SCS_SCALE` — multiply every dataset's size (default 1.0; the test
//!   suite and CI use small values);
//! * `SCS_SEED` — generator seed (default 42);
//! * `SCS_QUERIES` — queries per measurement (default 100, as in the
//!   paper).

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

use bigraph::{BipartiteGraph, Vertex};
use datasets::DatasetSpec;
use std::time::{Duration, Instant};

/// Global experiment configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dataset scale factor in (0, 1].
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Number of queries averaged per measurement.
    pub n_queries: usize,
}

impl Config {
    /// Reads `SCS_SCALE` / `SCS_SEED` / `SCS_QUERIES` with defaults.
    /// Malformed values terminate the process with a message instead of
    /// silently benchmarking the default (see [`env_or`]).
    pub fn from_env() -> Config {
        let cfg = Config {
            scale: env_or("SCS_SCALE", 1.0),
            seed: env_or("SCS_SEED", 42),
            n_queries: env_usize("SCS_QUERIES", 100, 1),
        };
        // NaN-safe: anything but a positive finite scale is rejected.
        if !cfg.scale.is_finite() || cfg.scale <= 0.0 {
            eprintln!("error: SCS_SCALE={} must be positive", cfg.scale);
            std::process::exit(2);
        }
        cfg
    }
}

/// Parses env var `key` as a `T`: `Ok(None)` when unset, `Err` with a
/// user-facing message when set but unparsable. The testable core of
/// [`env_or`].
pub fn env_parse<T: std::str::FromStr>(key: &str) -> Result<Option<T>, String> {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{key} is not valid unicode")),
        Ok(raw) => raw.parse().map(Some).map_err(|_| {
            format!(
                "malformed {key}={raw:?} (expected {})",
                std::any::type_name::<T>()
            )
        }),
    }
}

/// [`env_parse`] with a default, terminating the process (status 2) on
/// a malformed value instead of silently falling back — a typo'd
/// `SCS_BATCH=6 4` must not quietly benchmark the default. Shared by
/// every bench binary; an earlier per-binary helper swallowed the
/// parse error.
pub fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    match env_parse(key) {
        Ok(Some(v)) => v,
        Ok(None) => default,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// [`env_or`] for `usize` knobs with a lower bound, rejecting (loudly)
/// values below `min` instead of clamping them.
pub fn env_usize(key: &str, default: usize, min: usize) -> usize {
    let v = env_or(key, default);
    if v < min {
        eprintln!("error: {key}={v} is below the minimum of {min}");
        std::process::exit(2);
    }
    v
}

/// Builds one dataset analogue under the configured scale.
pub fn load_dataset(cfg: &Config, name: &str) -> BipartiteGraph {
    let spec = DatasetSpec::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let spec = if cfg.scale < 1.0 {
        spec.scaled(cfg.scale)
    } else {
        spec
    };
    spec.build(cfg.seed)
}

/// All dataset tags in Table I order.
pub fn dataset_names() -> Vec<&'static str> {
    DatasetSpec::catalog().iter().map(|s| s.name).collect()
}

/// Times one closure invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean and sample standard deviation of per-query durations, in
/// seconds.
pub fn mean_std(durations: &[Duration]) -> (f64, f64) {
    if durations.is_empty() {
        return (0.0, 0.0);
    }
    let xs: Vec<f64> = durations.iter().map(Duration::as_secs_f64).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Runs `f` once per query vertex and returns per-query durations.
pub fn time_queries<F: FnMut(Vertex)>(queries: &[Vertex], mut f: F) -> Vec<Duration> {
    queries
        .iter()
        .map(|&q| {
            let start = Instant::now();
            f(q);
            start.elapsed()
        })
        .collect()
}

/// Formats seconds for table cells: scientific-ish, like the paper's
/// log-scale plots.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 1e-4 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Formats a byte count as MB with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Prints a whole table, sizing each column to its widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    print_header(header, &widths);
    for row in rows {
        print_row(row, &widths);
    }
}

/// The `α = β = 0.7·δ` rule the paper uses for the all-datasets
/// experiments (Figs. 8 and 12), with a floor of 2.
pub fn default_params(delta: usize) -> usize {
    ((delta as f64 * 0.7).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let cfg = Config::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.n_queries > 0);
    }

    #[test]
    fn env_parse_distinguishes_unset_from_malformed() {
        // Keys namespaced to this test: the suite runs multi-threaded
        // in one process and must not race the SCS_* knobs.
        std::env::remove_var("SCS_TEST_UNSET");
        assert_eq!(env_parse::<usize>("SCS_TEST_UNSET"), Ok(None));
        std::env::set_var("SCS_TEST_GOOD", "64");
        assert_eq!(env_parse::<usize>("SCS_TEST_GOOD"), Ok(Some(64)));
        std::env::set_var("SCS_TEST_BAD", "6 4");
        let err = env_parse::<usize>("SCS_TEST_BAD").unwrap_err();
        assert!(err.contains("SCS_TEST_BAD"), "{err}");
        assert!(err.contains("6 4"), "{err}");
        // The silent-fallback bug: the old helper mapped this Err to
        // the default; env_or instead exits the process, which is not
        // testable here — the distinction above is the load-bearing
        // part.
        std::env::set_var("SCS_TEST_FLOAT", "0.25");
        assert_eq!(env_parse::<f64>("SCS_TEST_FLOAT"), Ok(Some(0.25)));
        assert!(env_parse::<usize>("SCS_TEST_FLOAT").is_err());
        for k in ["SCS_TEST_GOOD", "SCS_TEST_BAD", "SCS_TEST_FLOAT"] {
            std::env::remove_var(k);
        }
    }

    #[test]
    fn stats_helpers() {
        let ds = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        let (mean, std) = mean_std(&ds);
        assert!((mean - 0.02).abs() < 1e-9);
        assert!((std - 0.01).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0), "0");
        assert!(fmt_secs(5e-6).ends_with("µs"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(1.5).ends_with('s'));
        assert_eq!(fmt_mb(1024 * 1024), "1.00MB");
    }

    #[test]
    fn dataset_loading_scaled() {
        let cfg = Config {
            scale: 0.05,
            seed: 1,
            n_queries: 5,
        };
        let g = load_dataset(&cfg, "BS");
        assert!(g.n_edges() > 0);
        assert_eq!(dataset_names().len(), 11);
    }

    #[test]
    fn default_params_floor() {
        assert_eq!(default_params(0), 2);
        assert_eq!(default_params(10), 7);
    }
}
