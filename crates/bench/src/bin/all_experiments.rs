//! Runs every experiment binary in sequence — the one-shot reproduction
//! of the paper's whole Section V. Results land on stdout; EXPERIMENTS.md
//! records a reference run.
//!
//! `cargo run -p scs-bench --release --bin all_experiments`

use std::process::Command;

const BINS: [&str; 11] = [
    "table1",
    "fig6_quality",
    "table2_case_study",
    "fig8_query_time",
    "fig9_vary_params",
    "fig10_index_time",
    "fig11_index_size",
    "fig12_scs_datasets",
    "fig13_scs_params",
    "table3_weight_dist",
    "workspace_reuse",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n{}", "=".repeat(72));
        println!("== {bin}");
        println!("{}", "=".repeat(72));
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin);
        }
    }
    println!("\n{}", "=".repeat(72));
    if failures.is_empty() {
        println!("all {} experiments completed", BINS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
