//! Workspace-reuse smoke benchmark: the same query stream answered with
//! per-query fresh scratch (the `significant_community` wrapper, which
//! allocates a throwaway workspace) versus one warm, reused
//! [`scs::QueryWorkspace`] (`significant_community_into`).
//!
//! The graph is a grid of small disjoint bicliques, so every answer is
//! tiny and the fresh path's Ω(n + m) per-query buffer churn dominates —
//! exactly the pathology the workspace layer removes. The binary exits
//! nonzero if the reused-workspace run is not at least as fast as the
//! fresh-allocation run, which makes it a CI guard against regressions
//! in the reuse path.
//!
//! `cargo run -p scs-bench --release --bin workspace_reuse`

use bigraph::{GraphBuilder, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use scs_bench::{print_header, print_row, Config};
use std::time::Instant;

/// Disjoint `blocks` × (`side` × `side`) bicliques with mixed weights.
fn biclique_grid(blocks: usize, side: usize) -> bigraph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for blk in 0..blocks {
        for u in 0..side {
            for l in 0..side {
                // Two weight levels per block so the peel loop runs.
                let w = if (u + l) % 2 == 0 { 5.0 } else { 3.0 };
                b.add_edge(blk * side + u, blk * side + l, w);
            }
        }
    }
    b.build().expect("grid is duplicate-free")
}

fn main() {
    let cfg = Config::from_env();
    let blocks = 1500;
    let side = 4;
    let g = biclique_grid(blocks, side);
    println!("workspace_reuse on {}", g.summary());
    let search = CommunitySearch::new(g);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_queries = cfg.n_queries.max(500);
    let queries: Vec<Vertex> = (0..n_queries)
        .map(|_| search.graph().upper(rng.gen_range(0..blocks * side)))
        .collect();

    // Interleave the modes over several rounds and keep each mode's best
    // round, so one scheduling hiccup cannot decide the comparison.
    let mut fresh_best = 0.0f64;
    let mut reused_best = 0.0f64;
    let mut ws = QueryWorkspace::new();
    let mut out = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        for &q in &queries {
            std::hint::black_box(search.significant_community(q, 2, 2, Algorithm::Peel));
        }
        fresh_best = fresh_best.max(n_queries as f64 / t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for &q in &queries {
            search.significant_community_into(q, 2, 2, Algorithm::Peel, &mut ws, &mut out);
            std::hint::black_box(&out);
        }
        reused_best = reused_best.max(n_queries as f64 / t0.elapsed().as_secs_f64());
    }

    let widths = [22, 14];
    print_header(&["mode", "QPS"], &widths);
    print_row(
        &["fresh allocation".into(), format!("{fresh_best:.0}")],
        &widths,
    );
    print_row(
        &["reused workspace".into(), format!("{reused_best:.0}")],
        &widths,
    );
    println!(
        "\nspeedup {:.2}x, scratch resident {} bytes, allocations avoided {}",
        reused_best / fresh_best,
        ws.heap_bytes(),
        ws.allocations_avoided()
    );

    if reused_best < fresh_best {
        eprintln!("REGRESSION: reused-workspace throughput fell below fresh allocation");
        std::process::exit(1);
    }
}
