//! Fig. 6 — community quality on the MovieLens-style genre subgraph,
//! varying α = β = t: (a) bipartite density and average rating per
//! model, (b) percentage of dislike users per model.
//!
//! Models: SC (significant (α,β)-community), (α,β)-core community,
//! k-bitruss (k = α·β), maximal biclique, and the C4★ threshold
//! community — exactly the paper's lineup.
//!
//! `cargo run -p scs-bench --release --bin fig6_quality`

use bigraph::metrics::{bipartite_density, dislike_fraction};
use bigraph::Subgraph;
use cohesion::{
    bitruss_community, bitruss_decomposition, maximal_biclique_containing, threshold_community,
};
use datasets::{generate_movielens, MovieLensConfig};
use scs::{Algorithm, CommunitySearch};
use scs_bench::*;

fn main() {
    let cfg = Config::from_env();
    let ml_cfg = MovieLensConfig::default();
    let ml = generate_movielens(&ml_cfg);
    let genre = 0; // "comedy"
    let (g, user_map, _) = ml.extract_genre(genre);
    println!(
        "Fig. 6: community quality on the genre-{genre} subgraph ({}), seed={}\n",
        g.summary(),
        cfg.seed
    );

    let search = CommunitySearch::new(g.clone());
    let delta = search.delta();
    let q_ui = user_map
        .iter()
        .position(|&o| o == ml.graph.local_index(ml.some_fan(genre)))
        .expect("fan present in genre subgraph");
    let q = search.graph().upper(q_ui);
    let phi = bitruss_decomposition(&g);

    // The paper varies t ∈ {45, 50, 55} on the real 25M-edge graph;
    // scale to the analogue's δ.
    let ts: Vec<usize> = [0.5, 0.6, 0.7]
        .iter()
        .map(|c| ((delta as f64 * c).round() as usize).max(2))
        .collect();
    println!("δ = {delta}; using t ∈ {ts:?} (paper: 45/50/55)\n");

    let widths = [4, 12, 9, 9, 9, 12];
    print_header(
        &["t", "model", "density", "avg_w", "min_w", "%dislike"],
        &widths,
    );
    for &t in &ts {
        let sc = search.significant_community(q, t, t, Algorithm::Auto);
        let core = search.community(q, t, t);
        let bt = bitruss_community(&g, &phi, q, (t * t) as u64);
        let bc = maximal_biclique_containing(&g, q, t.min(8), t.min(8), 300_000)
            .map(|b| b.to_subgraph(&g));
        let c4 = threshold_community(&g, q, 4.0);
        let rows: [(&str, Option<Subgraph>); 5] = [
            ("SC", Some(sc)),
            ("(α,β)-core", Some(core)),
            ("bitruss", if bt.is_empty() { None } else { Some(bt) }),
            ("biclique", bc),
            ("C4★", if c4.is_empty() { None } else { Some(c4) }),
        ];
        for (label, sub) in rows {
            match sub {
                None => print_row(
                    &[
                        t.to_string(),
                        label.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ],
                    &widths,
                ),
                Some(sub) if sub.is_empty() => print_row(
                    &[
                        t.to_string(),
                        label.to_string(),
                        "∅".into(),
                        "∅".into(),
                        "∅".into(),
                        "∅".into(),
                    ],
                    &widths,
                ),
                Some(sub) => {
                    let dis = dislike_fraction(&sub, 4.0, 0.6 * t as f64) * 100.0;
                    print_row(
                        &[
                            t.to_string(),
                            label.to_string(),
                            format!("{:.2}", bipartite_density(&sub)),
                            format!("{:.2}", sub.mean_weight().unwrap()),
                            format!("{:.2}", sub.min_weight().unwrap()),
                            format!("{dis:.1}"),
                        ],
                        &widths,
                    );
                }
            }
        }
        println!();
    }
    println!("Expected shape (paper Fig. 6): SC has the highest avg/min rating and");
    println!("the fewest dislike users; structural models have high density but");
    println!("high dislike rates; C4★ has low density (no structure constraint).");
}
