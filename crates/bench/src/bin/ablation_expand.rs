//! Ablation study for the design choices inside SCS-Expand (DESIGN.md
//! §6): the ε validation schedule the paper derives (ε = 2 from the
//! geometric-series argument) and the Lemma 7/8 pruning rules.
//!
//! `cargo run -p scs-bench --release --bin ablation_expand`

use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::{scs_expand_with_options, ExpandOptions};
use scs::DeltaIndex;
use scs_bench::*;

fn measure(
    g: &bigraph::BipartiteGraph,
    id: &DeltaIndex,
    queries: &[bigraph::Vertex],
    a: usize,
    b: usize,
    opts: ExpandOptions,
) -> f64 {
    let (mean, _) = mean_std(&time_queries(queries, |q| {
        let c = id.query_community(g, q, a, b);
        std::hint::black_box(scs_expand_with_options(g, &c, q, a, b, opts));
    }));
    mean
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "Ablation: SCS-Expand design choices, {} queries (scale={})\n",
        cfg.n_queries, cfg.scale
    );

    for name in ["DT", "ML"] {
        let g = load_dataset(&cfg, name);
        let id = DeltaIndex::build(&g);
        let delta = id.delta().max(2);
        // Small parameters: the regime where expansion's checks matter.
        let (a, b) = {
            let t = ((delta as f64 * 0.3).round() as usize).max(1);
            (t, t)
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = random_core_queries(&g, a, b, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            continue;
        }
        println!("=== {name} (δ = {delta}, α = β = {a}) ===\n");

        println!("(1) ε sweep — the paper derives ε = 2 as optimal:");
        let widths = [8, 12];
        print_header(&["ε", "expand"], &widths);
        for eps in [1.25, 1.5, 2.0, 4.0, 8.0] {
            let t = measure(
                &g,
                &id,
                &queries,
                a,
                b,
                ExpandOptions {
                    epsilon: eps,
                    ..Default::default()
                },
            );
            print_row(&[format!("{eps}"), fmt_secs(t)], &widths);
        }

        println!("\n(2) pruning rules on/off (ε = 2):");
        let widths = [22, 12];
        print_header(&["configuration", "expand"], &widths);
        let configs = [
            ("lemma7 + lemma8", true, true),
            ("lemma7 only", true, false),
            ("lemma8 only", false, true),
            ("no pruning", false, false),
        ];
        for (label, l7, l8) in configs {
            let t = measure(
                &g,
                &id,
                &queries,
                a,
                b,
                ExpandOptions {
                    epsilon: 2.0,
                    use_lemma7: l7,
                    use_lemma8: l8,
                },
            );
            print_row(&[label.to_string(), fmt_secs(t)], &widths);
        }
        println!();
    }
    println!("Expected shape: ε = 2 at or near the minimum of the sweep;");
    println!("disabling both lemmas costs extra validations (slower or equal).");
}
