//! Fig. 11 — index sizes: Iv, Iα_bs, Iβ_bs, Iδ on every dataset. When a
//! basic index exceeds the work budget its size is reported as the
//! extrapolated lower bound, marked with `>` (the paper reports expected
//! sizes for unbuildable indexes the same way).
//!
//! `cargo run -p scs-bench --release --bin fig11_index_size`

use bicore::bicore_index::BicoreIndex;
use bigraph::Side;
use scs::{BasicIndex, DeltaIndex};
use scs_bench::*;

const BASIC_BUDGET: usize = 120_000_000;

fn main() {
    let cfg = Config::from_env();
    println!("Fig. 11: index size (scale={})\n", cfg.scale);
    let widths = [8, 11, 12, 12, 11];
    print_header(&["Dataset", "Iv", "Iα_bs", "Iβ_bs", "Iδ"], &widths);
    for name in dataset_names() {
        let g = load_dataset(&cfg, name);
        let iv = BicoreIndex::build(&g);
        let id = DeltaIndex::build(&g);
        let budget = BASIC_BUDGET.max(g.n_edges() * 50);
        let entry_bytes = 16; // Entry { Vertex, EdgeId, u32 } + CSR overhead ≈ 16B
        let fmt_basic = |r: Result<BasicIndex, scs::index::BudgetExceeded>| match r {
            Ok(ix) => fmt_mb(ix.heap_bytes()),
            Err(e) => format!(">{}", fmt_mb(e.work_done * entry_bytes / 2)),
        };
        let ia = fmt_basic(BasicIndex::build_with_budget(&g, Side::Upper, budget));
        let ib = fmt_basic(BasicIndex::build_with_budget(&g, Side::Lower, budget));
        print_row(
            &[
                name.to_string(),
                fmt_mb(iv.heap_bytes()),
                ia,
                ib,
                fmt_mb(id.heap_bytes()),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: Iv smallest (vertex info only);");
    println!("size(Iδ) ≤ size(Iα_bs), size(Iβ_bs) on nearly all datasets.");
}
