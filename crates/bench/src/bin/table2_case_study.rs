//! Table II + Fig. 7 — case study on the genre subgraph: statistics of
//! the query result per model (|U|, |M|, R_avg, R_min, M_avg, Sim) and,
//! with `--verbose`, representative members (the Fig. 7 view).
//!
//! `cargo run -p scs-bench --release --bin table2_case_study [-- --verbose]`

use bigraph::metrics::{community_stats, jaccard_similarity, mean_upper_vertex_weight};
use bigraph::Subgraph;
use cohesion::{
    bitruss_community, bitruss_decomposition, maximal_biclique_containing, threshold_community,
};
use datasets::{generate_movielens, MovieLensConfig};
use scs::{Algorithm, CommunitySearch};
use scs_bench::*;

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    let _cfg = Config::from_env();
    let ml = generate_movielens(&MovieLensConfig::default());
    let genre = 0;
    let (g, user_map, _) = ml.extract_genre(genre);
    let search = CommunitySearch::new(g.clone());
    let delta = search.delta();
    let t = ((delta as f64 * 0.7).round() as usize).max(2);
    let q_ui = user_map
        .iter()
        .position(|&o| o == ml.graph.local_index(ml.some_fan(genre)))
        .unwrap();
    let q = search.graph().upper(q_ui);
    println!(
        "Table II: case study, q = user {q_ui}, α = β = {t} (δ = {delta}, paper: q=6778, α=β=45)\n"
    );

    let sc = search.significant_community(q, t, t, Algorithm::Auto);
    let core = search.community(q, t, t);
    let phi = bitruss_decomposition(&g);
    let bt = bitruss_community(&g, &phi, q, (t * t) as u64);
    let bc =
        maximal_biclique_containing(&g, q, t.min(8), t.min(8), 300_000).map(|b| b.to_subgraph(&g));
    let c4 = threshold_community(&g, q, 4.0);

    let widths = [12, 7, 7, 7, 7, 8, 8];
    print_header(
        &["Model", "|U|", "|M|", "Ravg", "Rmin", "Mavg", "Sim(%)"],
        &widths,
    );
    let models: Vec<(&str, Option<&Subgraph>)> = vec![
        ("SC", Some(&sc)),
        ("(α,β)-core", Some(&core)),
        ("bitruss", (!bt.is_empty()).then_some(&bt)),
        ("biclique", bc.as_ref()),
        ("C4★", (!c4.is_empty()).then_some(&c4)),
    ];
    for (label, sub) in &models {
        match sub {
            None => print_row(
                &[
                    label.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ],
                &widths,
            ),
            Some(sub) => {
                let s = community_stats(sub).expect("nonempty");
                print_row(
                    &[
                        label.to_string(),
                        s.n_upper.to_string(),
                        s.n_lower.to_string(),
                        format!("{:.2}", s.avg_weight),
                        format!("{:.2}", s.min_weight),
                        format!("{:.2}", s.avg_upper_degree),
                        format!("{:.2}", 100.0 * jaccard_similarity(sub, &sc)),
                    ],
                    &widths,
                );
            }
        }
    }

    if verbose {
        // Fig. 7: representative members — per-user mean ratings inside
        // SC vs inside the structural community.
        println!("\nFig. 7 view — representative users (mean in-community rating):");
        let mut sc_users = mean_upper_vertex_weight(&sc);
        sc_users.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("  SC members (top 5):");
        for (u, w) in sc_users.iter().take(5) {
            println!("    user {:>5}  avg {:.2}", g.local_index(*u), w);
        }
        let mut core_users = mean_upper_vertex_weight(&core);
        core_users.sort_by(|a, b| a.1.total_cmp(&b.1));
        println!("  lowest raters kept by the (α,β)-core but dropped by SC:");
        for (u, w) in core_users
            .iter()
            .filter(|(u, _)| !sc.contains_vertex(*u))
            .take(5)
        {
            println!("    user {:>5}  avg {:.2}", g.local_index(*u), w);
        }
    }

    println!("\nExpected shape (paper Table II): SC has the highest Ravg/Rmin with a");
    println!("moderate |U|; the structural models include many low-raters; C4★ has");
    println!("tiny Mavg (loose structure); every Sim < 100% except SC itself.");
}
