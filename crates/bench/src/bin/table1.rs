//! Table I — summary of datasets: |E|, |U|, |L|, δ, α_max, β_max,
//! |R_{δ,δ}| for every analogue.
//!
//! `cargo run -p scs-bench --release --bin table1`

use bicore::abcore::abcore;
use bicore::degeneracy::degeneracy;
use bigraph::Side;
use scs_bench::{dataset_names, load_dataset, print_header, print_row, Config};

fn main() {
    let cfg = Config::from_env();
    println!(
        "Table I: summary of dataset analogues (scale={})\n",
        cfg.scale
    );
    let widths = [8, 9, 9, 9, 6, 8, 8, 9];
    print_header(
        &[
            "Dataset", "|E|", "|U|", "|L|", "δ", "αmax", "βmax", "|Rδ,δ|",
        ],
        &widths,
    );
    for name in dataset_names() {
        let g = load_dataset(&cfg, name);
        let delta = degeneracy(&g);
        let r_dd = if delta >= 1 {
            abcore(&g, delta, delta).edges(&g).size()
        } else {
            0
        };
        print_row(
            &[
                name.to_string(),
                g.n_edges().to_string(),
                g.n_upper().to_string(),
                g.n_lower().to_string(),
                delta.to_string(),
                g.max_degree(Side::Upper).to_string(),
                g.max_degree(Side::Lower).to_string(),
                r_dd.to_string(),
            ],
            &widths,
        );
    }
    println!("\nShape checks vs the paper's Table I: ML has the largest δ;");
    println!("EN/DTI have α_max ≫ δ (hubs); DT's β_max ≫ α_max; |Rδ,δ| ≪ |E|.");
}
