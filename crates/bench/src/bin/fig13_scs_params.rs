//! Fig. 13 — SCS query time varying parameters on the DT and ML
//! analogues: (a)/(b) α = β = c·δ; (c) α = c·δ, β = 0.5δ on DT;
//! (d) α = 0.5δ, β = c·δ on ML.
//!
//! `cargo run -p scs-bench --release --bin fig13_scs_params`

use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::{scs_baseline_in, scs_expand_in, scs_peel_in};
use scs::{DeltaIndex, QueryWorkspace};
use scs_bench::*;

const CS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn sweep(
    g: &bigraph::BipartiteGraph,
    id: &DeltaIndex,
    cfg: &Config,
    label: &str,
    param: impl Fn(f64) -> (usize, usize),
) {
    println!("\n{label}");
    let widths = [6, 5, 5, 13, 13, 13];
    print_header(&["c", "α", "β", "baseline", "peel", "expand"], &widths);
    for c in CS {
        let (a, b) = param(c);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = random_core_queries(g, a, b, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            println!("{c:>6}  (empty core, skipped)");
            continue;
        }
        // Warm-workspace runs, as in the serving layer.
        let mut ws = QueryWorkspace::new();
        let (bl, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(scs_baseline_in(g, q, a, b, &mut ws));
        }));
        let (pe, _) = mean_std(&time_queries(&queries, |q| {
            let cm = id.query_community(g, q, a, b);
            std::hint::black_box(scs_peel_in(g, &cm, q, a, b, &mut ws));
        }));
        let (ex, _) = mean_std(&time_queries(&queries, |q| {
            let cm = id.query_community(g, q, a, b);
            std::hint::black_box(scs_expand_in(g, &cm, q, a, b, &mut ws));
        }));
        print_row(
            &[
                format!("{c}"),
                a.to_string(),
                b.to_string(),
                fmt_secs(bl),
                fmt_secs(pe),
                fmt_secs(ex),
            ],
            &widths,
        );
    }
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "Fig. 13: SCS query time varying α and β, {} queries (scale={})",
        cfg.n_queries, cfg.scale
    );
    for (name, fix_beta) in [("DT", true), ("ML", false)] {
        let g = load_dataset(&cfg, name);
        let id = DeltaIndex::build(&g);
        let delta = id.delta().max(2);
        let sc = |c: f64| ((delta as f64 * c).round() as usize).max(1);
        println!("\n=== {name} (δ = {delta}) ===");
        sweep(
            &g,
            &id,
            &cfg,
            &format!("(a/b) {name}: α = β = c·δ"),
            |c| (sc(c), sc(c)),
        );
        if fix_beta {
            sweep(
                &g,
                &id,
                &cfg,
                &format!("(c) {name}: α = c·δ, β = 0.5·δ"),
                |c| (sc(c), sc(0.5)),
            );
        } else {
            sweep(
                &g,
                &id,
                &cfg,
                &format!("(d) {name}: α = 0.5·δ, β = c·δ"),
                |c| (sc(0.5), sc(c)),
            );
        }
    }
    println!("\nExpected shape: expand wins at small c (big community, small R);");
    println!("peel catches up / wins at large c; both ≫ baseline throughout.");
}
