//! Fig. 12 — significant (α,β)-community query time on every dataset:
//! SCS-Baseline vs SCS-Peel vs SCS-Expand, α = β = 0.7δ, mean ± stdev
//! over random core queries (all using Qopt for step 1, as in the
//! paper).
//!
//! `cargo run -p scs-bench --release --bin fig12_scs_datasets`

use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::{scs_baseline_in, scs_expand_in, scs_peel_in};
use scs::{DeltaIndex, QueryWorkspace};
use scs_bench::*;

fn main() {
    let cfg = Config::from_env();
    println!(
        "Fig. 12: SCS query time, α=β=0.7δ, {} queries, mean±σ (scale={})\n",
        cfg.n_queries, cfg.scale
    );
    let widths = [8, 5, 19, 19, 19];
    print_header(&["Dataset", "α=β", "baseline", "peel", "expand"], &widths);
    for name in dataset_names() {
        let g = load_dataset(&cfg, name);
        let id = DeltaIndex::build(&g);
        let t = default_params(id.delta());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = random_core_queries(&g, t, t, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            println!("{name:>8}  (empty ({t},{t})-core, skipped)");
            continue;
        }
        // One warm workspace per dataset, shared by all three
        // contenders — the serving layer's reuse discipline.
        let mut ws = QueryWorkspace::new();
        let (bl_m, bl_s) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(scs_baseline_in(&g, q, t, t, &mut ws));
        }));
        let (pe_m, pe_s) = mean_std(&time_queries(&queries, |q| {
            let c = id.query_community(&g, q, t, t);
            std::hint::black_box(scs_peel_in(&g, &c, q, t, t, &mut ws));
        }));
        let (ex_m, ex_s) = mean_std(&time_queries(&queries, |q| {
            let c = id.query_community(&g, q, t, t);
            std::hint::black_box(scs_expand_in(&g, &c, q, t, t, &mut ws));
        }));
        let pm = |m: f64, s: f64| format!("{}±{}", fmt_secs(m), fmt_secs(s));
        print_row(
            &[
                name.to_string(),
                t.to_string(),
                pm(bl_m, bl_s),
                pm(pe_m, pe_s),
                pm(ex_m, ex_s),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: peel & expand ≫ baseline (two-step framework);");
    println!("expand usually ≤ peel on average, with larger variance.");
}
