//! Table III — SCS running time under the four weight distributions on
//! the DT analogue: AE (all equal), RW (random walk with restart),
//! UF (uniform), SK (skew normal).
//!
//! `cargo run -p scs-bench --release --bin table3_weight_dist`

use bigraph::weights::WeightModel;
use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::{scs_baseline, scs_expand, scs_peel};
use scs::DeltaIndex;
use scs_bench::*;

fn main() {
    let cfg = Config::from_env();
    println!(
        "Table III: SCS time under weight distributions (DT analogue, {} queries, scale={})\n",
        cfg.n_queries, cfg.scale
    );
    let base = load_dataset(&cfg, "DT");
    let widths = [14, 12, 12, 12, 12];
    print_header(&["Algorithm", "AE", "RW", "UF", "SK"], &widths);

    let mut rows: Vec<[String; 3]> = Vec::new(); // [baseline, peel, expand] per model
    for model in WeightModel::table3_models() {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let g = model.apply(&base, &mut rng);
        let id = DeltaIndex::build(&g);
        let t = default_params(id.delta());
        let queries = random_core_queries(&g, t, t, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            rows.push(["-".into(), "-".into(), "-".into()]);
            continue;
        }
        let (bl, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(scs_baseline(&g, q, t, t));
        }));
        let (pe, _) = mean_std(&time_queries(&queries, |q| {
            let c = id.query_community(&g, q, t, t);
            std::hint::black_box(scs_peel(&g, &c, q, t, t));
        }));
        let (ex, _) = mean_std(&time_queries(&queries, |q| {
            let c = id.query_community(&g, q, t, t);
            std::hint::black_box(scs_expand(&g, &c, q, t, t));
        }));
        rows.push([fmt_secs(bl), fmt_secs(pe), fmt_secs(ex)]);
    }
    for (i, algo) in ["SCS-Baseline", "SCS-Peel", "SCS-Expand"]
        .iter()
        .enumerate()
    {
        let cells: Vec<String> = std::iter::once(algo.to_string())
            .chain(rows.iter().map(|r| r[i].clone()))
            .collect();
        print_row(&cells, &widths);
    }
    println!("\nExpected shape: AE trivially fast for all three (scan & return C);");
    println!("RW/UF/SK within a small factor of each other.");
}
