//! Fig. 10 — index construction time: Iv, Iα_bs, Iβ_bs, Iδ on every
//! dataset. The basic indexes run under a work budget and report INF
//! when they exceed it, mirroring the paper's 10⁴-second cutoff.
//!
//! `cargo run -p scs-bench --release --bin fig10_index_time`

use bicore::bicore_index::BicoreIndex;
use bigraph::Side;
use scs::{BasicIndex, DeltaIndex};
use scs_bench::*;

/// Work budget for the basic indexes: generous enough for the
/// low-degree datasets, exceeded by the hub-heavy ones (as in the paper,
/// where Iα_bs/Iβ_bs could not be built on DUI/EN within the limit).
const BASIC_BUDGET: usize = 120_000_000;

fn main() {
    let cfg = Config::from_env();
    println!("Fig. 10: index construction time (scale={})\n", cfg.scale);
    let widths = [8, 12, 12, 12, 12];
    print_header(&["Dataset", "Iv", "Iα_bs", "Iβ_bs", "Iδ"], &widths);
    for name in dataset_names() {
        let g = load_dataset(&cfg, name);
        let (_, t_iv) = time(|| std::hint::black_box(BicoreIndex::build(&g)));
        let budget = BASIC_BUDGET.max(g.n_edges() * 50);
        let (ra, t_ia) = time(|| BasicIndex::build_with_budget(&g, Side::Upper, budget));
        let (rb, t_ib) = time(|| BasicIndex::build_with_budget(&g, Side::Lower, budget));
        let (_, t_id) = time(|| std::hint::black_box(DeltaIndex::build(&g)));
        let fmt_basic = |r: &Result<BasicIndex, scs::index::BudgetExceeded>,
                         t: std::time::Duration| match r {
            Ok(_) => fmt_secs(t.as_secs_f64()),
            Err(_) => "INF".to_string(),
        };
        print_row(
            &[
                name.to_string(),
                fmt_secs(t_iv.as_secs_f64()),
                fmt_basic(&ra, t_ia),
                fmt_basic(&rb, t_ib),
                fmt_secs(t_id.as_secs_f64()),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: Iδ ≈ Iv (slightly slower); basic indexes blow up");
    println!("or hit INF where α_max/β_max is huge (LS/DT/EN/DUI/DTI analogues).");
}
