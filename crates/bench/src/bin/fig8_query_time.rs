//! Fig. 8 — retrieving the (α,β)-community: Qo (online) vs Qv (bicore
//! index) vs Qopt (Iδ), α = β = 0.7δ, averaged over random core queries.
//!
//! `cargo run -p scs-bench --release --bin fig8_query_time`

use bicore::abcore::abcore_community_in;
use bicore::bicore_index::BicoreIndex;
use bigraph::workspace::Workspace;
use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::DeltaIndex;
use scs_bench::*;

fn main() {
    let cfg = Config::from_env();
    println!(
        "Fig. 8: (α,β)-community retrieval, α=β=0.7δ, {} queries (scale={})\n",
        cfg.n_queries, cfg.scale
    );
    let widths = [8, 5, 12, 12, 12, 9];
    print_header(&["Dataset", "α=β", "Qo", "Qv", "Qopt", "speedup"], &widths);
    for name in dataset_names() {
        let g = load_dataset(&cfg, name);
        let iv = BicoreIndex::build(&g);
        let id = DeltaIndex::build(&g);
        let t = default_params(id.delta());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = random_core_queries(&g, t, t, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            println!("{name:>8}  (empty ({t},{t})-core, skipped)");
            continue;
        }
        // Each contender reuses one warm workspace across its queries,
        // mirroring how the serving layer runs them.
        let mut ws = Workspace::new();
        let (qo_mean, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(abcore_community_in(&g, q, t, t, &mut ws));
        }));
        let (qv_mean, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(iv.query_community(&g, q, t, t));
        }));
        let (qopt_mean, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(id.query_community_in(&g, q, t, t, &mut ws));
        }));
        print_row(
            &[
                name.to_string(),
                t.to_string(),
                fmt_secs(qo_mean),
                fmt_secs(qv_mean),
                fmt_secs(qopt_mean),
                format!("{:.0}x", qo_mean / qopt_mean.max(1e-12)),
            ],
            &widths,
        );
    }
    println!("\nExpected shape: Qopt fastest everywhere; gap vs Qo grows with |E|.");
}
