//! Serving-throughput scaling: replays the same workload through the
//! `scs-service` engine with 1/2/4/8 workers and reports QPS, speedup
//! over the single-worker run, latency quantiles and cache hit rate —
//! then re-runs the widest configuration sharded (2 shards) and gates
//! on every shard actually serving traffic.
//!
//! Knobs: `SCS_SCALE` (dataset scale, default 0.05 here — serving runs
//! live on a bigger graph than the micro-benches), `SCS_SEED`,
//! `SCS_QUERIES` (workload size, default 2000 here), `SCS_DATASET`
//! (analogue name, default `ML`).

use scs::{Algorithm, CommunitySearch};
use scs_bench::{env_or, env_usize, load_dataset, print_table, Config};
use scs_service::{build_workload, replay, QueryEngine, ServiceConfig, WorkloadSpec};

fn main() {
    // This binary's own defaults differ from the harness-wide ones;
    // re-read the knobs through the loud parser so a malformed value
    // aborts instead of silently measuring the default.
    let mut cfg = Config::from_env();
    cfg.scale = env_or("SCS_SCALE", 0.05);
    cfg.n_queries = env_usize("SCS_QUERIES", 2000, 1);
    let dataset = env_or("SCS_DATASET", "ML".to_string());

    let g = load_dataset(&cfg, &dataset);
    println!("service_scaling on {dataset}: {}", g.summary());
    let search = CommunitySearch::shared(g);
    let spec = WorkloadSpec {
        n_queries: cfg.n_queries,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        zipf: 0.0,
        seed: cfg.seed,
    };
    let workload = build_workload(&search, &spec);
    if workload.is_empty() {
        eprintln!("(2,2)-core is empty at this scale; raise SCS_SCALE");
        std::process::exit(1);
    }
    println!(
        "workload: {} queries, repeat fraction {:.2}, seed {}\n",
        workload.len(),
        spec.repeat_fraction,
        spec.seed
    );

    let header = [
        "workers",
        "QPS",
        "speedup",
        "p50 µs",
        "p99 µs",
        "hit rate",
        "coalesced",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline_qps = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers,
                cache_capacity: 4096,
                cache_shards: 16,
                ..ServiceConfig::default()
            },
        );
        let (report, _) = replay(&engine, &workload, workers * 2);
        engine.shutdown();
        let qps = report.replay_qps;
        let base = *baseline_qps.get_or_insert(qps);
        rows.push(vec![
            workers.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / base),
            report.stats.p50_us.to_string(),
            report.stats.p99_us.to_string(),
            format!("{:.1}%", report.stats.cache.hit_rate() * 100.0),
            report.stats.coalesced.to_string(),
        ]);
    }
    print_table(&header, &rows);

    // Sharded run: same workload, 8 workers split across 2 shards. The
    // gate is engagement, not speed — every shard must have completed
    // work (the router spreads core-sampled vertices), and the shard
    // rows must account for the full aggregate.
    let engine = QueryEngine::start(
        search.clone(),
        ServiceConfig {
            workers: 8,
            shards: 2,
            cache_capacity: 4096,
            cache_shards: 16,
            ..ServiceConfig::default()
        },
    );
    let (report, _) = replay(&engine, &workload, 16);
    engine.shutdown();
    let st = &report.stats;
    println!(
        "\nsharded (2 shards × 4 workers): {:.0} QPS, p99 {} µs",
        report.replay_qps, st.p99_us
    );
    for s in &st.per_shard {
        println!(
            "  shard {}: {} completed, {} hits, {} misses",
            s.shard, s.completed, s.cache_hits, s.cache_misses
        );
    }
    if st.per_shard.len() != 2 || st.per_shard.iter().any(|s| s.completed == 0) {
        eprintln!("sharded engine left a shard idle: {:?}", st.per_shard);
        std::process::exit(1);
    }
    if st.per_shard.iter().map(|s| s.completed).sum::<u64>() != st.completed {
        eprintln!("per-shard rows do not sum to the aggregate: {st:?}");
        std::process::exit(1);
    }
}
