//! Serving-throughput scaling: replays the same workload through the
//! `scs-service` engine with 1/2/4/8 workers and reports QPS, speedup
//! over the single-worker run, latency quantiles and cache hit rate.
//!
//! Knobs: `SCS_SCALE` (dataset scale, default 0.05 here — serving runs
//! live on a bigger graph than the micro-benches), `SCS_SEED`,
//! `SCS_QUERIES` (workload size, default 2000 here), `SCS_DATASET`
//! (analogue name, default `ML`).

use scs::{Algorithm, CommunitySearch};
use scs_bench::{load_dataset, print_table, Config};
use scs_service::{build_workload, replay, QueryEngine, ServiceConfig, WorkloadSpec};

fn main() {
    let mut cfg = Config::from_env();
    if std::env::var("SCS_SCALE").is_err() {
        cfg.scale = 0.05;
    }
    if std::env::var("SCS_QUERIES").is_err() {
        cfg.n_queries = 2000;
    }
    let dataset = std::env::var("SCS_DATASET").unwrap_or_else(|_| "ML".into());

    let g = load_dataset(&cfg, &dataset);
    println!("service_scaling on {dataset}: {}", g.summary());
    let search = CommunitySearch::shared(g);
    let spec = WorkloadSpec {
        n_queries: cfg.n_queries,
        alpha: 2,
        beta: 2,
        algo: Algorithm::Auto,
        repeat_fraction: 0.5,
        seed: cfg.seed,
    };
    let workload = build_workload(&search, &spec);
    if workload.is_empty() {
        eprintln!("(2,2)-core is empty at this scale; raise SCS_SCALE");
        std::process::exit(1);
    }
    println!(
        "workload: {} queries, repeat fraction {:.2}, seed {}\n",
        workload.len(),
        spec.repeat_fraction,
        spec.seed
    );

    let header = [
        "workers",
        "QPS",
        "speedup",
        "p50 µs",
        "p99 µs",
        "hit rate",
        "coalesced",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline_qps = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = QueryEngine::start(
            search.clone(),
            ServiceConfig {
                workers,
                cache_capacity: 4096,
                cache_shards: 16,
            },
        );
        let (report, _) = replay(&engine, &workload, workers * 2);
        engine.shutdown();
        let qps = report.replay_qps;
        let base = *baseline_qps.get_or_insert(qps);
        rows.push(vec![
            workers.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / base),
            report.stats.p50_us.to_string(),
            report.stats.p99_us.to_string(),
            format!("{:.1}%", report.stats.cache.hit_rate() * 100.0),
            report.stats.coalesced.to_string(),
        ]);
    }
    print_table(&header, &rows);
}
