//! Fig. 9 — (α,β)-community retrieval while varying the parameters on
//! the EN and SO analogues: (a)/(b) α = β = c·δ; (c)/(d) one parameter
//! fixed at 0.5δ, c ∈ {0.1, 0.3, 0.5, 0.7, 0.9}.
//!
//! `cargo run -p scs-bench --release --bin fig9_vary_params`

use bicore::abcore::abcore_community;
use bicore::bicore_index::BicoreIndex;
use datasets::random_core_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::DeltaIndex;
use scs_bench::*;

const CS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

fn sweep(
    g: &bigraph::BipartiteGraph,
    iv: &BicoreIndex,
    id: &DeltaIndex,
    cfg: &Config,
    label: &str,
    param: impl Fn(f64) -> (usize, usize),
) {
    println!("\n{label}");
    let widths = [6, 5, 5, 12, 12, 12];
    print_header(&["c", "α", "β", "Qo", "Qv", "Qopt"], &widths);
    for c in CS {
        let (a, b) = param(c);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let queries = random_core_queries(g, a, b, cfg.n_queries, &mut rng);
        if queries.is_empty() {
            println!("{c:>6}  (empty core, skipped)");
            continue;
        }
        let (qo, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(abcore_community(g, q, a, b));
        }));
        let (qv, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(iv.query_community(g, q, a, b));
        }));
        let (qopt, _) = mean_std(&time_queries(&queries, |q| {
            std::hint::black_box(id.query_community(g, q, a, b));
        }));
        print_row(
            &[
                format!("{c}"),
                a.to_string(),
                b.to_string(),
                fmt_secs(qo),
                fmt_secs(qv),
                fmt_secs(qopt),
            ],
            &widths,
        );
    }
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "Fig. 9: retrieval time varying α and β, {} queries (scale={})",
        cfg.n_queries, cfg.scale
    );
    for name in ["EN", "SO"] {
        let g = load_dataset(&cfg, name);
        let iv = BicoreIndex::build(&g);
        let id = DeltaIndex::build(&g);
        let delta = id.delta().max(2);
        let scale_c = |c: f64| ((delta as f64 * c).round() as usize).max(1);
        println!("\n=== {name} (δ = {delta}) ===");
        sweep(
            &g,
            &iv,
            &id,
            &cfg,
            &format!("(a/b) {name}: α = β = c·δ"),
            |c| (scale_c(c), scale_c(c)),
        );
        sweep(
            &g,
            &iv,
            &id,
            &cfg,
            &format!("(c) {name}: α = 0.5·δ, β = c·δ"),
            |c| (scale_c(0.5), scale_c(c)),
        );
        sweep(
            &g,
            &iv,
            &id,
            &cfg,
            &format!("(d) {name}: α = c·δ, β = 0.5·δ"),
            |c| (scale_c(c), scale_c(0.5)),
        );
    }
    println!("\nExpected shape: methods converge at small c; Qopt wins at large c.");
}
