//! Batched-submission smoke benchmark in three modes: the same replayed
//! workload submitted per-request (`QueryEngine::query`, one queue
//! round-trip, snapshot read and cache handshake per request), batched
//! (`QueryEngine::submit_batch`, those costs paid once per batch, one
//! worker per batch), and batched **with adaptive splitting** (a single
//! submitter's batches fanned out across the idle pool).
//!
//! The graph is the same grid of small disjoint bicliques as
//! `workspace_reuse`: every answer is tiny, so the per-request fixed
//! costs dominate and batching's amortization is exactly what is
//! measured. Each mode gets a fresh engine (an empty cache) per round;
//! rounds are interleaved and each mode keeps its best, so one
//! scheduling hiccup cannot decide the comparison.
//!
//! Two CI gates, both exiting nonzero on failure:
//!
//! * batched submission must not fall below per-request submission
//!   (the PR 3 gate, measured at `SCS_CLIENTS` concurrent clients with
//!   splitting off so it stays a pure amortization A/B);
//! * split batching must not *regress* below unsplit batching in the
//!   single-big-submitter scenario splitting exists for (1 client, so
//!   the pool has idle capacity). The dev/CI container is single-core,
//!   so no speedup is required — splitting across workers that share
//!   one core only adds scheduling overhead — but it must stay within
//!   [`SPLIT_TOLERANCE`] of unsplit, and it must actually engage
//!   (`splits > 0`), or the gate is vacuous.
//!
//! Knobs: `SCS_QUERIES` (workload size, floor 2000 here), `SCS_SEED`,
//! `SCS_BATCH` (batch size, default 64), `SCS_CLIENTS` (default 2).
//! Malformed knob values abort loudly (see `scs_bench::env_or`).
//!
//! `cargo run -p scs-bench --release --bin batch_throughput`

use bigraph::GraphBuilder;
use scs::{Algorithm, CommunitySearch};
use scs_bench::{env_usize, print_header, print_row, Config};
use scs_service::{
    build_workload, replay, replay_batched, QueryEngine, ReplayReport, ServiceConfig, WorkloadSpec,
};
use std::sync::Arc;

/// Split batching passes the regression gate at ≥ this fraction of
/// unsplit batching's best throughput. On a multi-core box split wins
/// outright; on the single-core CI container the two modes do the same
/// work with extra handoffs, and this margin absorbs that overhead
/// while still catching a pathological slowdown.
const SPLIT_TOLERANCE: f64 = 0.8;

/// Disjoint `blocks` × (`side` × `side`) bicliques with mixed weights.
fn biclique_grid(blocks: usize, side: usize) -> bigraph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for blk in 0..blocks {
        for u in 0..side {
            for l in 0..side {
                let w = if (u + l) % 2 == 0 { 5.0 } else { 3.0 };
                b.add_edge(blk * side + u, blk * side + l, w);
            }
        }
    }
    b.build().expect("grid is duplicate-free")
}

/// Best replay QPS of `rounds` interleaved measurements on fresh
/// engines (cold caches), plus the last round's report for counters.
fn best_of(
    rounds: usize,
    search: &Arc<CommunitySearch>,
    config: &ServiceConfig,
    workload: &[scs_service::QueryRequest],
    clients: usize,
    batch_size: usize,
) -> (f64, ReplayReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..rounds {
        let engine = QueryEngine::start(search.clone(), config.clone());
        let (report, _) = if batch_size <= 1 {
            replay(&engine, workload, clients)
        } else {
            replay_batched(&engine, workload, clients, batch_size)
        };
        engine.shutdown();
        best = best.max(report.replay_qps);
        last = Some(report);
    }
    (best, last.expect("at least one round"))
}

fn main() {
    let cfg = Config::from_env();
    let batch_size = env_usize("SCS_BATCH", 64, 1);
    let clients = env_usize("SCS_CLIENTS", 2, 1);
    let workers = 2usize;

    let g = biclique_grid(1500, 4);
    println!("batch_throughput on {}", g.summary());
    let search = CommunitySearch::shared(g);
    let spec = WorkloadSpec {
        n_queries: cfg.n_queries.max(2000),
        alpha: 2,
        beta: 2,
        algo: Algorithm::Peel,
        repeat_fraction: 0.3,
        zipf: 0.0,
        seed: cfg.seed,
    };
    let workload = build_workload(&search, &spec);
    println!(
        "workload: {} queries, repeat fraction {:.2}, {clients} clients, {workers} workers, batch size {batch_size}\n",
        workload.len(),
        spec.repeat_fraction,
    );

    let unsplit_config = ServiceConfig {
        workers,
        cache_capacity: 4096,
        cache_shards: 16,
        split_batches: false,
        ..ServiceConfig::default()
    };
    let split_config = ServiceConfig {
        split_batches: true,
        ..unsplit_config.clone()
    };

    let (per_request_best, _) = best_of(3, &search, &unsplit_config, &workload, clients, 1);
    let (batched_best, batched_report) =
        best_of(3, &search, &unsplit_config, &workload, clients, batch_size);
    // The splitting A/B runs with ONE client so the pool has idle
    // capacity — the scenario splitting exists for. Both sides of the
    // comparison use the same client count.
    let (unsplit_1c_best, _) = best_of(3, &search, &unsplit_config, &workload, 1, batch_size);
    let (split_1c_best, split_report) =
        best_of(3, &search, &split_config, &workload, 1, batch_size);

    let widths = [30, 14];
    print_header(&["mode", "QPS"], &widths);
    print_row(
        &["per-request".into(), format!("{per_request_best:.0}")],
        &widths,
    );
    print_row(
        &[
            format!("batched ({batch_size}/job)"),
            format!("{batched_best:.0}"),
        ],
        &widths,
    );
    print_row(
        &["batched, 1 client".into(), format!("{unsplit_1c_best:.0}")],
        &widths,
    );
    print_row(
        &[
            "batched+split, 1 client".into(),
            format!("{split_1c_best:.0}"),
        ],
        &widths,
    );
    println!(
        "\nbatching speedup {:.2}x over {} batch jobs; split/unsplit {:.2}x over {} splits / {} sub-batches",
        batched_best / per_request_best,
        batched_report.stats.batches,
        split_1c_best / unsplit_1c_best,
        split_report.stats.splits,
        split_report.stats.sub_batches,
    );

    if batched_best < per_request_best {
        eprintln!("REGRESSION: batched submission throughput fell below per-request submission");
        std::process::exit(1);
    }
    if split_report.stats.splits == 0 {
        eprintln!("REGRESSION: adaptive splitting never engaged — the split gate measured nothing");
        std::process::exit(1);
    }
    if split_1c_best < SPLIT_TOLERANCE * unsplit_1c_best {
        eprintln!(
            "REGRESSION: split batching ({split_1c_best:.0} QPS) fell below \
             {SPLIT_TOLERANCE}x unsplit batching ({unsplit_1c_best:.0} QPS)"
        );
        std::process::exit(1);
    }
}
