//! Batched-submission smoke benchmark: the same replayed workload
//! submitted per-request (`QueryEngine::query`, one queue round-trip,
//! snapshot read and cache handshake per request) versus batched
//! (`QueryEngine::submit_batch`, those costs paid once per batch).
//!
//! The graph is the same grid of small disjoint bicliques as
//! `workspace_reuse`: every answer is tiny, so the per-request fixed
//! costs dominate and batching's amortization is exactly what is
//! measured. Each mode gets a fresh engine (an empty cache) per round;
//! rounds are interleaved and each mode keeps its best, so one
//! scheduling hiccup cannot decide the comparison. The binary exits
//! nonzero if batched submission is not at least as fast as per-request
//! submission, which makes it a CI guard for the batch path (mirroring
//! `workspace_reuse` for the workspace layer).
//!
//! Knobs: `SCS_QUERIES` (workload size, floor 2000 here), `SCS_SEED`,
//! `SCS_BATCH` (batch size, default 64), `SCS_CLIENTS` (default 2).
//!
//! `cargo run -p scs-bench --release --bin batch_throughput`

use bigraph::GraphBuilder;
use scs::{Algorithm, CommunitySearch};
use scs_bench::{print_header, print_row, Config};
use scs_service::{
    build_workload, replay, replay_batched, QueryEngine, ServiceConfig, WorkloadSpec,
};

/// Disjoint `blocks` × (`side` × `side`) bicliques with mixed weights.
fn biclique_grid(blocks: usize, side: usize) -> bigraph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for blk in 0..blocks {
        for u in 0..side {
            for l in 0..side {
                let w = if (u + l) % 2 == 0 { 5.0 } else { 3.0 };
                b.add_edge(blk * side + u, blk * side + l, w);
            }
        }
    }
    b.build().expect("grid is duplicate-free")
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn main() {
    let cfg = Config::from_env();
    let batch_size = env_usize("SCS_BATCH", 64);
    let clients = env_usize("SCS_CLIENTS", 2);
    let workers = 2usize;

    let g = biclique_grid(1500, 4);
    println!("batch_throughput on {}", g.summary());
    let search = CommunitySearch::shared(g);
    let spec = WorkloadSpec {
        n_queries: cfg.n_queries.max(2000),
        alpha: 2,
        beta: 2,
        algo: Algorithm::Peel,
        repeat_fraction: 0.3,
        seed: cfg.seed,
    };
    let workload = build_workload(&search, &spec);
    println!(
        "workload: {} queries, repeat fraction {:.2}, {clients} clients, {workers} workers, batch size {batch_size}\n",
        workload.len(),
        spec.repeat_fraction,
    );

    let config = ServiceConfig {
        workers,
        cache_capacity: 4096,
        cache_shards: 16,
    };
    let mut per_request_best = 0.0f64;
    let mut batched_best = 0.0f64;
    let mut last_batches = 0u64;
    for _ in 0..3 {
        // Fresh engine per measurement: both modes start from a cold
        // cache, so neither inherits the other's hits.
        let engine = QueryEngine::start(search.clone(), config.clone());
        let (report, _) = replay(&engine, &workload, clients);
        engine.shutdown();
        per_request_best = per_request_best.max(report.replay_qps);

        let engine = QueryEngine::start(search.clone(), config.clone());
        let (report, _) = replay_batched(&engine, &workload, clients, batch_size);
        engine.shutdown();
        batched_best = batched_best.max(report.replay_qps);
        last_batches = report.stats.batches;
    }

    let widths = [24, 14];
    print_header(&["mode", "QPS"], &widths);
    print_row(
        &["per-request".into(), format!("{per_request_best:.0}")],
        &widths,
    );
    print_row(
        &[
            format!("batched ({batch_size}/job)"),
            format!("{batched_best:.0}"),
        ],
        &widths,
    );
    println!(
        "\nspeedup {:.2}x over {} batch jobs",
        batched_best / per_request_best,
        last_batches
    );

    if batched_best < per_request_best {
        eprintln!("REGRESSION: batched submission throughput fell below per-request submission");
        std::process::exit(1);
    }
}
