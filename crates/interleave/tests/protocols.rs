//! Exhaustive bounded-interleaving checks of the engine's protocol
//! models — and proof the checker can tell correct protocols from
//! subtly broken ones.
//!
//! The schedule-count assertions pin the exhaustiveness bound: two
//! free-running 6-step threads admit `C(12,6) = 924` interleavings, and
//! the seqlock/reply-cell explorations must enumerate at least that
//! many complete schedules.

use scs_interleave::models::{ArenaRecycle, EpochInstall, ReplyCell, Seqlock};
use scs_interleave::Explorer;

/// All interleavings of two free-running 6-step threads.
const TWO_BY_SIX: u64 = 924;

#[test]
fn seqlock_correct_passes_every_interleaving() {
    let report = Explorer::default()
        .explore(&Seqlock::correct())
        .expect("correct seqlock has no torn reads");
    assert!(
        report.schedules >= TWO_BY_SIX,
        "enumerated only {} schedules (need >= {TWO_BY_SIX})",
        report.schedules
    );
    // Retried reads make schedules longer than the 12-step minimum.
    assert!(report.longest >= 12, "longest={}", report.longest);
}

#[test]
fn seqlock_unannounced_write_is_caught() {
    let err = Explorer::default()
        .explore(&Seqlock::buggy())
        .expect_err("a data write before the odd sequence must be observable");
    assert!(err.message.contains("torn seqlock read"), "{err}");
    assert!(!err.schedule.is_empty());
}

#[test]
fn reply_cell_correct_passes_every_interleaving() {
    let report = Explorer::default()
        .explore(&ReplyCell::correct())
        .expect("correct reply cell loses no wakeups and recycles only taken cells");
    assert!(
        report.schedules >= TWO_BY_SIX,
        "enumerated only {} schedules (need >= {TWO_BY_SIX})",
        report.schedules
    );
}

#[test]
fn reply_cell_lost_notify_deadlocks() {
    let err = Explorer::default()
        .explore(&ReplyCell::lost_notify())
        .expect_err("a forgotten notify must strand the parked waiter");
    assert!(err.message.contains("deadlock"), "{err}");
    // The failing schedule parks the waiter, then runs the worker dry.
    assert!(err.schedule.contains(&0) && err.schedule.contains(&1));
}

#[test]
fn reply_cell_eager_recycle_is_caught() {
    let err = Explorer::default()
        .explore(&ReplyCell::eager_recycle())
        .expect_err("recycling an untaken cell must be observable");
    assert!(
        err.message.contains("recycled") || err.message.contains("deadlock"),
        "{err}"
    );
}

#[test]
fn epoch_install_correct_never_caches_a_stale_publish() {
    let report = Explorer::default()
        .explore(&EpochInstall::correct())
        .expect("the under-lock epoch re-check drops retired results");
    assert!(report.schedules > 0);
}

#[test]
fn epoch_install_unverified_publish_is_caught() {
    let err = Explorer::default()
        .explore(&EpochInstall::buggy())
        .expect_err("publishing without the epoch re-check must leave a stale entry");
    assert!(err.message.contains("retired epoch"), "{err}");
}

#[test]
fn arena_recycle_correct_never_touches_a_pinned_slab() {
    let report = Explorer::default()
        .explore(&ArenaRecycle::correct())
        .expect("the strong-count gate keeps pinned slabs frozen");
    assert!(report.schedules > 0);
}

#[test]
fn arena_recycle_without_refcount_check_is_caught() {
    let err = Explorer::default()
        .explore(&ArenaRecycle::buggy())
        .expect_err("recycling a pinned slab must be observable through the handle");
    assert!(
        err.message.contains("recycled") || err.message.contains("frozen"),
        "{err}"
    );
}

#[test]
fn violation_schedules_replay_deterministically() {
    // Replaying the reported schedule step-by-step reproduces the exact
    // violation — the property that makes checker reports actionable.
    let err = Explorer::default().explore(&Seqlock::buggy()).unwrap_err();
    let mut replay = Seqlock::buggy();
    let mut failed = None;
    for &tid in &err.schedule {
        if let Err(msg) = scs_interleave::Model::step(&mut replay, tid) {
            failed = Some(msg);
            break;
        }
    }
    assert_eq!(failed.as_deref(), Some(err.message.as_str()));
}
