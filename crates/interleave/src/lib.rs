//! # scs-interleave — a bounded interleaving checker for the engine's protocols
//!
//! The serving stack rests on a handful of hand-rolled concurrent
//! protocols: the seqlock slow-query ring, pooled one-shot reply cells,
//! epoch-swap installs, and generation-tagged arena slabs. Their stress
//! tests sample a few schedules per run; this crate checks *every*
//! schedule of a bounded model, in the spirit of
//! [loom](https://docs.rs/loom) — but vendored and std-only, like the
//! workspace's `rand`/`criterion` stand-ins, because the build is
//! offline.
//!
//! ## How it works
//!
//! A protocol is modelled as a [`Model`]: a cloneable state machine
//! holding the shared state plus one program counter per thread. The
//! [`Explorer`] runs a depth-first search over scheduler choices: at
//! every step it clones the state once per enabled thread and recurses,
//! so each root-to-leaf path is one complete interleaving. Invariants
//! are checked two ways:
//!
//! * [`Model::step`] returns `Err` the moment a thread observes an
//!   impossible state (a torn seqlock read, a recycled slab behind a
//!   pinned handle);
//! * the explorer itself reports **deadlock** (no thread enabled but not
//!   all finished — the shape of a lost wakeup) and **depth exhaustion**
//!   (a schedule longer than the bound — the shape of a livelock).
//!
//! The enumeration is exhaustive within the bound: two free-running
//! 6-step threads yield all `C(12,6) = 924` schedules, which is what the
//! protocol tests assert ([`Report::schedules`]). Models are exact-state
//! deterministic, so a reported [`Violation`] carries the exact thread
//! schedule that reproduces it.
//!
//! The protocol models mirroring the engine's structures live in
//! [`models`], each alongside a deliberately broken variant proving the
//! checker actually distinguishes correct protocols from subtly wrong
//! ones.

#![forbid(unsafe_code)]

pub mod models;

use std::fmt;

/// A bounded protocol model: shared state plus one deterministic state
/// machine per thread. Cloning must snapshot the *entire* state — the
/// explorer forks the model at every scheduling choice.
pub trait Model: Clone {
    /// Number of threads (fixed for the model's lifetime).
    fn threads(&self) -> usize;

    /// `true` once thread `tid` has run to completion.
    fn finished(&self, tid: usize) -> bool;

    /// `true` if thread `tid` can take a step now. A blocked thread
    /// (waiting on a lock or a condition) returns `false`; the explorer
    /// reports a deadlock if no unfinished thread is enabled.
    fn enabled(&self, tid: usize) -> bool {
        !self.finished(tid)
    }

    /// Advances thread `tid` by one atomic step. `Err` reports an
    /// invariant violation observed *during* the step (e.g. a torn
    /// read); the explorer attaches the schedule that led here.
    fn step(&mut self, tid: usize) -> Result<(), String>;

    /// Invariants of a completed run, checked once per schedule when
    /// every thread has finished.
    fn check_final(&self) -> Result<(), String>;
}

/// Exhaustive-enumeration statistics for a passing exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Complete schedules (root-to-leaf interleavings) enumerated.
    pub schedules: u64,
    /// Total steps executed across all schedules (tree edges).
    pub steps: u64,
    /// Length of the longest schedule.
    pub longest: usize,
}

/// A schedule that broke the model: the exact thread ids to replay, in
/// order, plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread ids in execution order, ending at the failing step.
    pub schedule: Vec<usize>,
    /// What the model (or the explorer) observed.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (schedule: {:?})", self.message, self.schedule)
    }
}

impl std::error::Error for Violation {}

/// Depth-first exhaustive scheduler. The depth bound caps a *single*
/// schedule's length (models bound their own retry loops; hitting the
/// bound is reported as a livelock rather than silently truncated).
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum steps in one schedule before it is declared a livelock.
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer { max_steps: 64 }
    }
}

impl Explorer {
    /// An explorer whose schedules may be at most `max_steps` long.
    pub fn with_depth(max_steps: usize) -> Explorer {
        Explorer { max_steps }
    }

    /// Enumerates every schedule of `model`. Returns the enumeration
    /// statistics, or the first [`Violation`] found (deterministic: the
    /// DFS visits lower thread ids first).
    pub fn explore<M: Model>(&self, model: &M) -> Result<Report, Violation> {
        let mut report = Report::default();
        let mut trace = Vec::with_capacity(self.max_steps);
        self.dfs(model, &mut trace, &mut report)?;
        Ok(report)
    }

    fn dfs<M: Model>(
        &self,
        model: &M,
        trace: &mut Vec<usize>,
        report: &mut Report,
    ) -> Result<(), Violation> {
        let n = model.threads();
        if (0..n).all(|t| model.finished(t)) {
            report.schedules += 1;
            report.longest = report.longest.max(trace.len());
            return model.check_final().map_err(|message| Violation {
                schedule: trace.clone(),
                message,
            });
        }
        if trace.len() >= self.max_steps {
            return Err(Violation {
                schedule: trace.clone(),
                message: format!(
                    "schedule exceeded {} steps: livelock or unbounded retry loop",
                    self.max_steps
                ),
            });
        }
        let mut any_enabled = false;
        for tid in 0..n {
            if model.finished(tid) || !model.enabled(tid) {
                continue;
            }
            any_enabled = true;
            let mut fork = model.clone();
            trace.push(tid);
            report.steps += 1;
            fork.step(tid).map_err(|message| Violation {
                schedule: trace.clone(),
                message,
            })?;
            self.dfs(&fork, trace, report)?;
            trace.pop();
        }
        if !any_enabled {
            return Err(Violation {
                schedule: trace.clone(),
                message: "deadlock: unfinished threads but none enabled (lost wakeup?)".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two free-running threads that each just count `steps` times.
    #[derive(Clone)]
    struct Independent {
        pc: [usize; 2],
        steps: usize,
    }

    impl Model for Independent {
        fn threads(&self) -> usize {
            2
        }
        fn finished(&self, tid: usize) -> bool {
            self.pc[tid] >= self.steps
        }
        fn step(&mut self, tid: usize) -> Result<(), String> {
            self.pc[tid] += 1;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    /// Both threads block immediately: the explorer must call it out.
    #[derive(Clone)]
    struct Stuck {
        done: bool,
    }

    impl Model for Stuck {
        fn threads(&self) -> usize {
            2
        }
        fn finished(&self, _tid: usize) -> bool {
            self.done
        }
        fn enabled(&self, _tid: usize) -> bool {
            false
        }
        fn step(&mut self, _tid: usize) -> Result<(), String> {
            unreachable!("never enabled")
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    fn binomial(n: u64, k: u64) -> u64 {
        (1..=k).fold(1, |acc, i| acc * (n - k + i) / i)
    }

    #[test]
    fn enumerates_all_interleavings_of_independent_threads() {
        for steps in 1..=6 {
            let r = Explorer::default()
                .explore(&Independent { pc: [0, 0], steps })
                .unwrap();
            let expect = binomial(2 * steps as u64, steps as u64);
            assert_eq!(r.schedules, expect, "steps={steps}");
            assert_eq!(r.longest, 2 * steps);
        }
        // The headline bound: 2 threads × 6 steps = C(12,6) = 924.
        assert_eq!(binomial(12, 6), 924);
    }

    #[test]
    fn deadlock_is_reported_with_its_schedule() {
        let err = Explorer::default()
            .explore(&Stuck { done: false })
            .unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        assert!(err.schedule.is_empty());
    }

    #[test]
    fn depth_bound_reports_livelock() {
        /// A thread that never finishes.
        #[derive(Clone)]
        struct Spinner;
        impl Model for Spinner {
            fn threads(&self) -> usize {
                1
            }
            fn finished(&self, _tid: usize) -> bool {
                false
            }
            fn step(&mut self, _tid: usize) -> Result<(), String> {
                Ok(())
            }
            fn check_final(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let err = Explorer::with_depth(8).explore(&Spinner).unwrap_err();
        assert!(err.message.contains("livelock"), "{err}");
        assert_eq!(err.schedule.len(), 8);
    }

    #[test]
    fn step_violations_carry_the_failing_schedule() {
        /// Thread 1 trips an invariant on its second step.
        #[derive(Clone)]
        struct Tripwire {
            pc: [usize; 2],
        }
        impl Model for Tripwire {
            fn threads(&self) -> usize {
                2
            }
            fn finished(&self, tid: usize) -> bool {
                self.pc[tid] >= 2
            }
            fn step(&mut self, tid: usize) -> Result<(), String> {
                self.pc[tid] += 1;
                if tid == 1 && self.pc[1] == 2 {
                    return Err("boom".to_string());
                }
                Ok(())
            }
            fn check_final(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let err = Explorer::default()
            .explore(&Tripwire { pc: [0, 0] })
            .unwrap_err();
        assert_eq!(err.message, "boom");
        assert_eq!(err.schedule.iter().filter(|&&t| t == 1).count(), 2);
    }
}
