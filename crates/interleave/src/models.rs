//! Protocol models mirroring the engine's hand-rolled concurrent
//! structures, each with a deliberately broken variant.
//!
//! Every model is a faithful *shape* of the production protocol — the
//! same reads, writes, guards and handshakes, at the granularity of one
//! shared-memory access per step — over plain fields instead of
//! atomics. The [`Explorer`](crate::Explorer) then enumerates every
//! interleaving, which is exactly the sequentially-consistent state
//! space; the weak-memory half of the argument (which fence pairs with
//! which access) is carried by the `// ordering:` comments that
//! `scs analyze` enforces in the production files, and dynamically by
//! the ThreadSanitizer CI job.
//!
//! | model | production structure | broken variant demonstrates |
//! |---|---|---|
//! | [`Seqlock`] | `telemetry::SlowRing` slots | torn read accepted |
//! | [`ReplyCell`] | engine's pooled one-shot reply cells | lost wakeup; recycled cell observed |
//! | [`EpochInstall`] | epoch-swap installs vs. leader publish | stale publish cached |
//! | [`ArenaRecycle`] | `bigraph::arena` slab recycling | recycle under a pinned handle |

use crate::Model;

/// The value every writer publishes; readers must see all-or-nothing.
const VAL: u64 = 1;
/// Words in the modelled seqlock payload.
const WORDS: usize = 4;

/// Seqlock writer vs. reader, the protocol of the telemetry slow-query
/// ring: the writer makes the sequence odd, writes [`WORDS`] payload
/// words, then makes it even; the reader snapshots the sequence, reads
/// the payload, and accepts only if the sequence was even and unchanged.
///
/// The broken variant writes the first payload word *before* making the
/// sequence odd — the model-level analogue of the missing release fence
/// the PR 8 ordering audit found in `SlowRing::offer` (data stores
/// allowed to become visible before the odd sequence).
#[derive(Debug, Clone)]
pub struct Seqlock {
    seq: u64,
    data: [u64; WORDS],
    wpc: usize,
    rpc: usize,
    rseq: u64,
    rdata: [u64; WORDS],
    retries: u32,
    accepted: Option<[u64; WORDS]>,
    gave_up: bool,
    write_before_odd: bool,
}

impl Seqlock {
    /// Retries the reader attempts before giving up (keeps every
    /// schedule bounded).
    const MAX_RETRIES: u32 = 2;

    /// The correct protocol: passes under every interleaving.
    pub fn correct() -> Seqlock {
        Seqlock {
            seq: 0,
            data: [0; WORDS],
            wpc: 0,
            rpc: 0,
            rseq: 0,
            rdata: [0; WORDS],
            retries: 0,
            accepted: None,
            gave_up: false,
            write_before_odd: false,
        }
    }

    /// The broken writer: first payload word lands before the sequence
    /// goes odd, so a reader can accept a torn snapshot.
    pub fn buggy() -> Seqlock {
        Seqlock {
            write_before_odd: true,
            ..Seqlock::correct()
        }
    }
}

impl Model for Seqlock {
    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, tid: usize) -> bool {
        if tid == 0 {
            self.wpc >= 6
        } else {
            self.rpc >= 6
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            // Writer: 6 steps.
            match (self.wpc, self.write_before_odd) {
                (0, false) => self.seq += 1,
                (0, true) => self.data[0] = VAL, // bug: unannounced write
                (1, false) => self.data[0] = VAL,
                (1, true) => self.seq += 1,
                (i @ 2..=4, _) => self.data[i - 1] = VAL,
                (5, _) => self.seq += 1,
                _ => unreachable!("writer finished"),
            }
            self.wpc += 1;
        } else {
            // Reader: 6 steps per attempt, bounded retries.
            match self.rpc {
                0 => self.rseq = self.seq,
                i @ 1..=4 => self.rdata[i - 1] = self.data[i - 1],
                5 => {
                    if self.rseq.is_multiple_of(2) && self.seq == self.rseq {
                        let snap = self.rdata;
                        self.accepted = Some(snap);
                        if snap != [0; WORDS] && snap != [VAL; WORDS] {
                            return Err(format!("torn seqlock read accepted: {snap:?}"));
                        }
                    } else if self.retries < Self::MAX_RETRIES {
                        self.retries += 1;
                        self.rpc = 0;
                        return Ok(());
                    } else {
                        self.gave_up = true;
                    }
                }
                _ => unreachable!("reader finished"),
            }
            self.rpc += 1;
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        match self.accepted {
            Some(snap) if snap != [0; WORDS] && snap != [VAL; WORDS] => {
                Err(format!("torn seqlock read accepted: {snap:?}"))
            }
            None if !self.gave_up => Err("reader neither accepted nor gave up".to_string()),
            _ => Ok(()),
        }
    }
}

/// Which ReplyCell bug (if any) the model carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplyCellBug {
    None,
    /// The worker forgets to notify after setting `ready`.
    LostNotify,
    /// The pool recycles the cell before the waiter took the answer
    /// (the reset forgets `ready`, the realistic pooled-cell bug).
    EagerRecycle,
}

/// Pooled one-shot reply cell, the engine's blocking-submit handshake:
/// the worker locks, stores the answer, sets `ready`, wakes the waiter
/// and unlocks; the waiter sleeps under the lock until `ready`, takes
/// the answer and marks the cell `taken`; only a taken cell may be
/// recycled into the pool.
#[derive(Debug, Clone)]
pub struct ReplyCell {
    /// Which thread holds the mutex (`None` = free).
    lock: Option<usize>,
    ready: bool,
    value: u64,
    taken: bool,
    /// Waiter parked on the condvar.
    sleeping: bool,
    recycled: bool,
    observed: Option<u64>,
    wpc: usize,
    kpc: usize,
    bug: ReplyCellBug,
}

/// The answer the worker publishes.
const ANSWER: u64 = 42;

impl ReplyCell {
    /// The correct protocol.
    pub fn correct() -> ReplyCell {
        ReplyCell {
            lock: None,
            ready: false,
            value: 0,
            taken: false,
            sleeping: false,
            recycled: false,
            observed: None,
            wpc: 0,
            kpc: 0,
            bug: ReplyCellBug::None,
        }
    }

    /// The worker never notifies: a parked waiter sleeps forever, which
    /// the explorer reports as a deadlock.
    pub fn lost_notify() -> ReplyCell {
        ReplyCell {
            bug: ReplyCellBug::LostNotify,
            ..ReplyCell::correct()
        }
    }

    /// The cell is recycled before the waiter takes the answer; the
    /// waiter then observes the reset value through its stale handle.
    pub fn eager_recycle() -> ReplyCell {
        ReplyCell {
            bug: ReplyCellBug::EagerRecycle,
            ..ReplyCell::correct()
        }
    }
}

/// Lock-free steps before each thread touches the cell: the waiter
/// builds its request, the worker runs the kernel stages. These keep
/// the interleaving space honest — in the real engine most of both
/// threads' work happens outside the reply-cell lock.
const FREE_STEPS: usize = 5;

impl Model for ReplyCell {
    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, tid: usize) -> bool {
        if tid == 0 {
            self.wpc >= FREE_STEPS + 6
        } else {
            self.kpc >= FREE_STEPS + 7
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid == 0 {
            match self.wpc.checked_sub(FREE_STEPS) {
                Some(0) => self.lock.is_none(),
                Some(4) => !self.sleeping,
                Some(pc) => pc < 6,
                None => true,
            }
        } else {
            match self.kpc.checked_sub(FREE_STEPS) {
                Some(0) => self.lock.is_none(),
                Some(5) => {
                    self.lock.is_none() && (self.taken || self.bug == ReplyCellBug::EagerRecycle)
                }
                Some(pc) => pc < 7,
                None => true,
            }
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            // Waiter: prep, lock, sleep-until-ready, take, unlock.
            match self.wpc.checked_sub(FREE_STEPS) {
                None => {} // build the request (local)
                Some(0) => self.lock = Some(0),
                Some(1) => {
                    if !self.ready {
                        self.sleeping = true;
                        self.lock = None;
                        self.wpc = FREE_STEPS + 4; // park
                        return Ok(());
                    }
                }
                Some(2) => {
                    let v = self.value;
                    self.observed = Some(v);
                    self.taken = true;
                    if v != ANSWER {
                        return Err(format!(
                            "waiter took {v} from a recycled/unanswered cell (expected {ANSWER})"
                        ));
                    }
                }
                Some(3) => {
                    self.lock = None;
                    self.wpc = FREE_STEPS + 6; // done
                    return Ok(());
                }
                Some(4) => {
                    // Woken: go back for the lock and re-check `ready`
                    // (the while-loop around the condvar wait).
                    self.wpc = FREE_STEPS;
                    return Ok(());
                }
                _ => unreachable!("waiter finished"),
            }
            self.wpc += 1;
        } else {
            // Worker: compute, lock, answer+notify, unlock, recycle.
            match self.kpc.checked_sub(FREE_STEPS) {
                None => {} // run the kernel stages (local)
                Some(0) => self.lock = Some(1),
                Some(1) => self.value = ANSWER,
                Some(2) => self.ready = true,
                Some(3) => {
                    if self.bug != ReplyCellBug::LostNotify {
                        self.sleeping = false; // notify
                    }
                }
                Some(4) => self.lock = None,
                Some(5) => self.lock = Some(1), // pool pulls the cell back
                Some(6) => {
                    // Reset for reuse. The realistic pool bug modelled by
                    // `eager_recycle` resets the value while `ready` is
                    // still observable.
                    self.value = 0;
                    self.recycled = true;
                    if self.bug != ReplyCellBug::EagerRecycle {
                        self.ready = false;
                    }
                    self.lock = None;
                }
                _ => unreachable!("worker finished"),
            }
            self.kpc += 1;
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        match self.observed {
            Some(ANSWER) => Ok(()),
            Some(v) => Err(format!("waiter finished with wrong answer {v}")),
            None => Err("waiter finished without an answer".to_string()),
        }
    }
}

/// Epoch-swap install vs. a leader publishing a computed result: the
/// leader snapshots the epoch without a lock, computes, then must
/// re-check the epoch *under the cache lock* before publishing — a
/// result computed against a retired epoch is dropped (counted as a
/// stale publish), never cached.
///
/// The broken variant publishes without the re-check, leaving a retired
/// epoch's result in the cache after the install invalidated it.
#[derive(Debug, Clone)]
pub struct EpochInstall {
    epoch: u64,
    /// The result cache: `(epoch_tag, value)`.
    cache: Option<(u64, u64)>,
    lock: Option<usize>,
    stale_publishes: u32,
    lpc: usize,
    ipc: usize,
    e_snap: u64,
    skip_recheck: bool,
}

impl EpochInstall {
    /// The correct protocol.
    pub fn correct() -> EpochInstall {
        EpochInstall {
            epoch: 1,
            cache: None,
            lock: None,
            stale_publishes: 0,
            lpc: 0,
            ipc: 0,
            e_snap: 0,
            skip_recheck: false,
        }
    }

    /// The broken leader: publishes without re-checking the epoch under
    /// the lock.
    pub fn buggy() -> EpochInstall {
        EpochInstall {
            skip_recheck: true,
            ..EpochInstall::correct()
        }
    }

    /// No retired result may be visible in the cache while the lock is
    /// free.
    fn quiescent(&self) -> Result<(), String> {
        if self.lock.is_none() {
            if let Some((tag, _)) = self.cache {
                if tag != self.epoch {
                    return Err(format!(
                        "cache holds a result from retired epoch {tag} at epoch {} \
                         (stale publish cached)",
                        self.epoch
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Model for EpochInstall {
    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, tid: usize) -> bool {
        if tid == 0 {
            self.lpc >= 6
        } else {
            self.ipc >= 6
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        let (pc, done) = if tid == 0 {
            (self.lpc, 6)
        } else {
            (self.ipc, 6)
        };
        if pc >= done {
            return false;
        }
        // Step 3 of either thread acquires the cache lock.
        pc != 3 || self.lock.is_none()
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            // Leader: snapshot epoch, compute, publish under the lock.
            match self.lpc {
                0 => self.e_snap = self.epoch,
                1 | 2 => {} // compute against the snapshot (local)
                3 => self.lock = Some(0),
                4 => {
                    if self.skip_recheck || self.epoch == self.e_snap {
                        self.cache = Some((self.e_snap, 100 + self.e_snap));
                    } else {
                        self.stale_publishes += 1;
                    }
                }
                5 => self.lock = None,
                _ => unreachable!("leader finished"),
            }
            self.lpc += 1;
        } else {
            // Installer: build, bump the epoch and invalidate under the
            // lock.
            match self.ipc {
                0 | 1 => {} // build the new index (local)
                2 => {}     // swap preparation (local)
                3 => self.lock = Some(1),
                4 => {
                    self.epoch += 1;
                    if let Some((tag, _)) = self.cache {
                        if tag < self.epoch {
                            self.cache = None;
                        }
                    }
                }
                5 => self.lock = None,
                _ => unreachable!("installer finished"),
            }
            self.ipc += 1;
        }
        self.quiescent()
    }

    fn check_final(&self) -> Result<(), String> {
        self.quiescent()?;
        if self.cache.is_none() && self.stale_publishes == 0 && self.lpc >= 6 {
            // The leader must have published or counted a stale publish
            // — unless the installer invalidated the published entry.
            // Both orders are fine; nothing further to check.
        }
        Ok(())
    }
}

/// The original payload of the modelled arena slab.
const ORIG: u64 = 7;

/// Arena slab recycle vs. a pinned handle: the owner may bump the
/// generation and overwrite the payload only after observing that no
/// handle pins the slab (`strong_count == 1`); a reader holding a
/// handle must see its generation stable and its bytes frozen.
///
/// The broken variant recycles without the strong-count check.
#[derive(Debug, Clone)]
pub struct ArenaRecycle {
    slab_gen: u64,
    data: u64,
    strong: u32,
    rpc: usize,
    opc: usize,
    rd1: u64,
    rg: u64,
    retries: u32,
    recycled: bool,
    skip_strong_check: bool,
}

impl ArenaRecycle {
    /// Owner retries of the strong-count check before giving up.
    const MAX_RETRIES: u32 = 3;

    /// The correct protocol.
    pub fn correct() -> ArenaRecycle {
        ArenaRecycle {
            slab_gen: 0,
            data: ORIG,
            strong: 2, // the pool's reference + the reader's handle
            rpc: 0,
            opc: 0,
            rd1: 0,
            rg: 0,
            retries: 0,
            recycled: false,
            skip_strong_check: false,
        }
    }

    /// The broken owner: recycles without checking the refcount.
    pub fn buggy() -> ArenaRecycle {
        ArenaRecycle {
            skip_strong_check: true,
            ..ArenaRecycle::correct()
        }
    }
}

impl Model for ArenaRecycle {
    fn threads(&self) -> usize {
        2
    }

    fn finished(&self, tid: usize) -> bool {
        if tid == 0 {
            self.rpc >= 6
        } else {
            self.opc >= 6
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            // Reader: use the pinned handle, then drop it.
            match self.rpc {
                0 => self.rd1 = self.data,
                1 => self.rg = self.slab_gen,
                2 => {
                    // handle_gen is 0: the handle was created before any
                    // recycle.
                    if self.rg != 0 {
                        return Err(format!(
                            "slab recycled to generation {} while a handle pinned it",
                            self.rg
                        ));
                    }
                    if self.rd1 != ORIG {
                        return Err(format!(
                            "pinned handle read {} instead of its frozen payload {ORIG}",
                            self.rd1
                        ));
                    }
                }
                3 => {
                    let rd2 = self.data;
                    if rd2 != ORIG {
                        return Err(format!(
                            "frozen region changed under a live handle: {rd2} != {ORIG}"
                        ));
                    }
                }
                4 => {}                // hand the result to the client (local)
                5 => self.strong -= 1, // drop the handle
                _ => unreachable!("reader finished"),
            }
            self.rpc += 1;
        } else {
            // Owner: recycle the slab once (it believes) it is unpinned.
            match self.opc {
                0 => {} // pick the best-fit free slab (local)
                1 => {} // observe the refcount next step (local pacing)
                2 => {
                    let unpinned = self.strong == 1;
                    if unpinned || self.skip_strong_check {
                        self.opc = 3;
                    } else if self.retries < Self::MAX_RETRIES {
                        self.retries += 1;
                        self.opc = 2; // re-observe
                    } else {
                        self.opc = 6; // give up; allocate fresh instead
                    }
                    return Ok(());
                }
                3 => self.slab_gen += 1,
                4 => self.data = 99,
                5 => {} // hand out the recycled storage (local)
                _ => unreachable!("owner finished"),
            }
            self.opc += 1;
        }
        if self.opc == 6 && self.slab_gen > 0 {
            self.recycled = true;
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.recycled && self.data != 99 {
            return Err("recycle bumped the generation without reclaiming storage".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_retry_loop_is_bounded() {
        // The owner's strong-count retry loop must terminate even if the
        // reader never runs: drive the owner alone.
        let mut m = ArenaRecycle::correct();
        for _ in 0..32 {
            if m.finished(1) {
                break;
            }
            m.step(1).unwrap();
        }
        assert!(m.finished(1), "owner gave up after bounded retries");
        assert_eq!(m.slab_gen, 0, "pinned slab was not recycled");
    }

    #[test]
    fn seqlock_retry_loop_is_bounded() {
        let mut m = Seqlock::correct();
        // Writer stops mid-write (seq odd), reader must give up.
        m.step(0).unwrap(); // seq -> 1
        for _ in 0..64 {
            if m.finished(1) {
                break;
            }
            m.step(1).unwrap();
        }
        assert!(m.finished(1));
        assert!(m.check_final().is_ok());
    }
}
