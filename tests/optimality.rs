//! Structural validation of the paper's complexity claims: retrieval
//! optimality (Lemma 3), index size relations (Lemma 5 / Fig. 11), and
//! the degeneracy bound — measured on real dataset analogues rather than
//! toy graphs.

use bicore::bicore_index::BicoreIndex;
use bicore::degeneracy::degeneracy;
use bigraph::Side;
use datasets::{random_core_queries, DatasetSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::{BasicIndex, DeltaIndex};

fn analogue(name: &str) -> bigraph::BipartiteGraph {
    DatasetSpec::by_name(name).unwrap().scaled(0.12).build(77)
}

#[test]
fn qopt_touches_only_result_edges() {
    // Lemma 3: entries touched ≤ 2·|E(C)| + |V(C)| (each edge seen from
    // both endpoints plus one over-threshold probe per vertex).
    for name in ["BS", "SO", "ML"] {
        let g = analogue(name);
        let idx = DeltaIndex::build(&g);
        let delta = idx.delta().max(1);
        let mut rng = StdRng::seed_from_u64(9);
        for c in [0.3, 0.5, 0.8] {
            let t = ((delta as f64 * c).round() as usize).max(1);
            for q in random_core_queries(&g, t, t, 10, &mut rng) {
                let (sub, stats) = idx.query_community_with_stats(&g, q, t, t);
                assert!(!sub.is_empty());
                let nv = sub.vertices().len();
                assert!(
                    stats.entries_touched <= 2 * sub.size() + nv,
                    "{name} t={t}: touched {} for {} edges / {} vertices",
                    stats.entries_touched,
                    sub.size(),
                    nv
                );
                assert_eq!(stats.result_edges, sub.size());
            }
        }
    }
}

#[test]
fn qv_touches_more_than_qopt() {
    // The motivation for Iδ: Qv inspects neighbors outside the community.
    let g = analogue("EN"); // hub-heavy: worst case for Qv
    let iv = BicoreIndex::build(&g);
    let id = DeltaIndex::build(&g);
    let delta = id.delta().max(2);
    let t = ((delta as f64 * 0.7).round() as usize).max(2);
    let mut rng = StdRng::seed_from_u64(10);
    let mut qv_total = 0usize;
    let mut qopt_total = 0usize;
    for q in random_core_queries(&g, t, t, 30, &mut rng) {
        let (c1, s1) = iv.query_community_with_stats(&g, q, t, t);
        let (c2, s2) = id.query_community_with_stats(&g, q, t, t);
        assert!(c1.same_edges(&c2));
        qv_total += s1.edges_touched;
        qopt_total += s2.entries_touched;
    }
    assert!(
        qv_total > qopt_total,
        "Qv should touch more adjacency than Qopt ({qv_total} vs {qopt_total})"
    );

    // On the paper's own Figure 2 the effect is extreme: the community
    // contains the hub u1, whose 999 neighbors Qv all inspects while
    // Qopt reads only the 13 community edges (plus probes).
    let g = bigraph::builder::figure2_example();
    let iv = BicoreIndex::build(&g);
    let id = DeltaIndex::build(&g);
    let (_, sv) = iv.query_community_with_stats(&g, g.upper(2), 2, 2);
    let (_, sd) = id.query_community_with_stats(&g, g.upper(2), 2, 2);
    assert!(
        sv.edges_touched > 20 * sd.entries_touched,
        "hub case: Qv {} vs Qopt {}",
        sv.edges_touched,
        sd.entries_touched
    );
}

#[test]
fn index_size_relations() {
    // Lemma 5 / Fig. 11: Iδ entry count is O(δ·m) and far below the
    // basic indexes on hub-heavy analogues; Iv (vertex info only) is the
    // smallest.
    let g = analogue("LS"); // tiny dense upper layer ⇒ huge α_max
    let id = DeltaIndex::build(&g);
    let iv = BicoreIndex::build(&g);
    let delta = degeneracy(&g);
    assert!(id.n_entries() <= 4 * delta * g.n_edges());
    assert!(iv.heap_bytes() < id.heap_bytes());

    let budget = 40 * g.n_edges() + 200_000;
    match BasicIndex::build_with_budget(&g, Side::Upper, budget) {
        Ok(ia) => assert!(
            id.n_entries() < ia.n_entries(),
            "Iδ ({}) should be smaller than Iα_bs ({})",
            id.n_entries(),
            ia.n_entries()
        ),
        Err(e) => assert!(e.work_done > budget, "abort must report the overage"),
    }
}

#[test]
fn degeneracy_bounds_hold_on_every_analogue() {
    for spec in DatasetSpec::catalog() {
        let g = spec.scaled(0.06).build(3);
        let delta = degeneracy(&g);
        assert!(
            delta * delta <= g.n_edges(),
            "{}: δ²={} > m={}",
            spec.name,
            delta * delta,
            g.n_edges()
        );
        // min(α,β) ≤ δ for nonempty cores: the (δ+1, δ+1)-core is empty.
        let core = bicore::abcore::abcore(&g, delta + 1, delta + 1);
        assert!(core.is_empty(), "{}", spec.name);
    }
}

#[test]
fn delta_index_covers_full_parameter_plane() {
    // Queries on both sides of the α=β diagonal and beyond δ, verified
    // against the online algorithm, on a real analogue.
    let g = analogue("GH");
    let idx = DeltaIndex::build(&g);
    let delta = idx.delta();
    let mut rng = StdRng::seed_from_u64(11);
    let queries = datasets::random_vertices(&g, 15, &mut rng);
    let params = [
        (1, delta + 2),
        (delta + 2, 1),
        (2, delta),
        (delta, 2),
        (delta + 1, delta + 1),
    ];
    for (a, b) in params {
        for &q in &queries {
            let fast = idx.query_community(&g, q, a, b);
            let online = bicore::abcore::abcore_community(&g, q, a, b);
            assert!(fast.same_edges(&online), "α={a} β={b}");
        }
    }
}
