//! Property test (seeded, exhaustive over a random grid): every
//! workspace-reusing `*_in` / `*_into` entry point returns exactly the
//! same community as the fresh-allocation wrapper it shadows.
//!
//! One `QueryWorkspace` is deliberately reused across random Chung–Lu
//! graphs of *different sizes* — the serving layer does exactly this
//! when an epoch swap installs a bigger or smaller graph — so stale
//! stamps, stale capacities and stale local-graph state from a previous
//! graph must never leak into an answer.

use bigraph::generators::{chung_lu_bipartite, power_law_degrees, ChungLuConfig};
use bigraph::weights::WeightModel;
use bigraph::{BipartiteGraph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::query::{
    scs_baseline, scs_baseline_in, scs_binary, scs_binary_in, scs_expand, scs_expand_in, scs_peel,
    scs_peel_in,
};
use scs::{Algorithm, CommunitySearch, QueryWorkspace};

fn random_graph(rng: &mut StdRng, nu: usize, nl: usize, m: usize) -> BipartiteGraph {
    let cfg = ChungLuConfig {
        upper_degrees: power_law_degrees(nu, 2.2, 1.0, 30.0, rng),
        lower_degrees: power_law_degrees(nl, 2.5, 1.0, 20.0, rng),
        m,
    };
    let g = chung_lu_bipartite(&cfg, rng);
    WeightModel::Uniform { lo: 0.5, hi: 9.5 }.apply(&g, rng)
}

#[test]
fn reused_workspace_matches_fresh_wrappers_across_graph_swaps() {
    let mut rng = StdRng::seed_from_u64(20260730);
    // One workspace across every graph and every query of the test.
    let mut ws = QueryWorkspace::new();
    let mut out = Vec::new();

    // Sizes deliberately go big → small → big so the workspace sees both
    // growth and logically-stale oversized buffers (the epoch-swap case).
    for (nu, nl, m) in [(60, 50, 400), (18, 22, 90), (80, 70, 600)] {
        let g = random_graph(&mut rng, nu, nl, m);
        let search = CommunitySearch::new(g.clone());

        for _ in 0..60 {
            let q = Vertex(rng.gen_range(0..g.n_vertices() as u32));
            let alpha = rng.gen_range(1..=4usize);
            let beta = rng.gen_range(1..=4usize);
            let algo = Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())];
            let label = format!("q={q:?} α={alpha} β={beta} algo={algo}");

            // Facade level: _in and _into agree with the wrapper.
            let fresh = search.significant_community(q, alpha, beta, algo);
            let reused = search.significant_community_in(q, alpha, beta, algo, &mut ws);
            assert!(reused.same_edges(&fresh), "{label}");
            search.significant_community_into(q, alpha, beta, algo, &mut ws, &mut out);
            assert_eq!(out, fresh.edges(), "{label}");

            // Step-1 retrieval agrees too.
            let c = search.community(q, alpha, beta);
            let c_in = search.community_in(q, alpha, beta, &mut ws);
            assert!(c_in.same_edges(&c), "{label}");

            // Kernel level: every algorithm entry point, same workspace.
            if !c.is_empty() {
                assert!(
                    scs_peel_in(&g, &c, q, alpha, beta, &mut ws)
                        .same_edges(&scs_peel(&g, &c, q, alpha, beta)),
                    "peel {label}"
                );
                assert!(
                    scs_expand_in(&g, &c, q, alpha, beta, &mut ws)
                        .same_edges(&scs_expand(&g, &c, q, alpha, beta)),
                    "expand {label}"
                );
                assert!(
                    scs_binary_in(&g, &c, q, alpha, beta, &mut ws)
                        .same_edges(&scs_binary(&g, &c, q, alpha, beta)),
                    "binary {label}"
                );
            }
            assert!(
                scs_baseline_in(&g, q, alpha, beta, &mut ws)
                    .same_edges(&scs_baseline(&g, q, alpha, beta)),
                "baseline {label}"
            );
        }
    }
    assert!(
        ws.allocations_avoided() > 0,
        "the reuse path never exercised warm buffers"
    );
}
