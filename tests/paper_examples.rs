//! Integration tests pinning down every concrete number the paper states
//! about its running examples (Figures 1–5, Examples 1–3).

use bigraph::builder::{figure1_example, figure2_example};
use bigraph::Side;
use scs::{Algorithm, BasicIndex, CommunitySearch, DeltaIndex};

#[test]
fn figure2_graph_counts() {
    let g = figure2_example();
    // "Figure 2(a) shows the graph G with 2,003 edges."
    assert_eq!(g.n_edges(), 2003);
    assert_eq!(g.n_upper(), 999);
    assert_eq!(g.n_lower(), 999);
}

#[test]
fn figure2_significant_community_needs_1999_removals() {
    // "We need to remove 1,999 edges from G to get the significant
    // (2,2)-community of u3 with only 4 edges."
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    let q = search.graph().upper(2);
    let r = search.significant_community(q, 2, 2, Algorithm::Peel);
    assert_eq!(r.size(), 4);
    assert_eq!(search.graph().n_edges() - r.size(), 1999);
}

#[test]
fn figure2_community_smaller_than_graph() {
    // "Figure 2(b) shows the (2,2)-community of u3 ... much smaller than
    // the original graph G."
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    let c = search.community(search.graph().upper(2), 2, 2);
    assert_eq!(c.size(), 13);
    assert!(c.size() * 100 < search.graph().n_edges());
}

#[test]
fn paper_example_1() {
    // Example 1: the significant (2,2)-community of u3 is formed by the
    // edges (u3,v1), (u3,v2), (u4,v1), (u4,v2).
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    let gref = search.graph();
    let q = gref.upper(2);
    for algo in [
        Algorithm::Peel,
        Algorithm::Expand,
        Algorithm::Binary,
        Algorithm::Baseline,
    ] {
        let r = search.significant_community(q, 2, 2, algo);
        let mut edges: Vec<(usize, usize)> = r
            .edges()
            .iter()
            .map(|&e| {
                let (u, v) = gref.endpoints(e);
                (gref.local_index(u) + 1, gref.local_index(v) + 1)
            })
            .collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(3, 1), (3, 2), (4, 1), (4, 2)], "{algo:?}");
    }
}

#[test]
fn paper_example_2_and_3_c33_of_u1() {
    // Examples 2 & 3: C_{3,3}(u1) reached via both the basic index and
    // Iδ contains u1,u2,u3 × v1,v2,v3 (9 edges).
    let g = figure2_example();
    let ia = BasicIndex::build(&g, Side::Upper);
    let id = DeltaIndex::build(&g);
    let q = g.upper(0);
    for c in [
        ia.query_community(&g, q, 3, 3),
        id.query_community(&g, q, 3, 3),
    ] {
        assert_eq!(c.size(), 9);
        let (us, vs) = c.layer_vertices();
        let us: Vec<usize> = us.iter().map(|&v| g.local_index(v) + 1).collect();
        let vs: Vec<usize> = vs.iter().map(|&v| g.local_index(v) + 1).collect();
        assert_eq!(us, vec![1, 2, 3]);
        assert_eq!(vs, vec![1, 2, 3]);
    }
}

#[test]
fn figure2_delta_is_3_and_index_layout() {
    // §I: "Iδ only needs to store (1,1)-core, (2,2)-core and (3,3)-core
    // since δ = 3", vs Iα_bs storing (1,1)..(999,1).
    let g = figure2_example();
    let id = DeltaIndex::build(&g);
    assert_eq!(id.delta(), 3);
    let ia = BasicIndex::build(&g, Side::Upper);
    assert_eq!(ia.k_max(), 999);
    assert!(id.heap_bytes() < ia.heap_bytes() / 10);
}

#[test]
fn figure1_significant_community_of_eric() {
    // §I: the (3,2)-community of Eric contains all users/movies on the
    // left; the significant (3,2)-community excludes "Alien" (movie 1)
    // and "Taylor" (user 0).
    let g = figure1_example();
    let search = CommunitySearch::new(g);
    let gref = search.graph();
    let eric = gref.upper(2);

    let c = search.community(eric, 3, 2);
    assert!(
        c.contains_vertex(gref.upper(0)),
        "Taylor in the structural community"
    );
    assert!(
        c.contains_vertex(gref.lower(1)),
        "Alien in the structural community"
    );

    let r = search.significant_community(eric, 3, 2, Algorithm::Auto);
    assert!(!r.is_empty());
    assert!(!r.contains_vertex(gref.upper(0)), "Taylor excluded from SC");
    assert!(!r.contains_vertex(gref.lower(1)), "Alien excluded from SC");
    assert!(r.contains_vertex(gref.upper(1)), "Kane kept");
    assert!(r.contains_vertex(gref.upper(3)), "Andy kept");
    assert!(r.min_weight().unwrap() >= 4.0);
}

#[test]
fn lemma_1_uniqueness_subgraph_relation() {
    // Lemma 1: R is unique and a subgraph of C_{α,β}(q) — check the
    // subgraph relation on the running example for several parameters.
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    for (a, b) in [(1usize, 1usize), (2, 2), (1, 3), (3, 1), (3, 3)] {
        for qi in 0..4 {
            let q = search.graph().upper(qi);
            let c = search.community(q, a, b);
            let r = search.significant_community(q, a, b, Algorithm::Peel);
            assert!(
                r.edges().iter().all(|e| c.contains_edge(*e)),
                "R ⊆ C violated at α={a} β={b} q=u{}",
                qi + 1
            );
        }
    }
}
