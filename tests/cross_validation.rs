//! Cross-validation of every retrieval path and every SCS algorithm
//! against each other and against the definition-level oracle, across
//! random graphs, weight models, and parameter ranges.

use bicore::abcore::abcore_community;
use bicore::bicore_index::BicoreIndex;
use bigraph::generators::random_bipartite;
use bigraph::weights::WeightModel;
use bigraph::{BipartiteGraph, Side};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::query::oracle::verify_significant;
use scs::query::{scs_baseline, scs_binary, scs_expand, scs_peel};
use scs::{BasicIndex, DeltaIndex};

fn weighted_random(seed: u64, n: usize, m: usize, model: &WeightModel) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_bipartite(n, n, m, &mut rng);
    model.apply(&g, &mut rng)
}

#[test]
fn all_community_retrieval_paths_agree() {
    for seed in 0..3u64 {
        let g = weighted_random(seed, 24, 170, &WeightModel::Uniform { lo: 0.0, hi: 1.0 });
        let ia = BasicIndex::build(&g, Side::Upper);
        let ib = BasicIndex::build(&g, Side::Lower);
        let iv = BicoreIndex::build(&g);
        let id = DeltaIndex::build(&g);
        for a in 1..=5 {
            for b in 1..=5 {
                for v in g.vertices().step_by(7) {
                    let qo = abcore_community(&g, v, a, b);
                    let qv = iv.query_community(&g, v, a, b);
                    let qa = ia.query_community(&g, v, a, b);
                    let qb = ib.query_community(&g, v, a, b);
                    let qd = id.query_community(&g, v, a, b);
                    assert!(qv.same_edges(&qo), "Qv ≠ Qo at α={a} β={b} {v:?}");
                    assert!(qa.same_edges(&qo), "Iα_bs ≠ Qo at α={a} β={b} {v:?}");
                    assert!(qb.same_edges(&qo), "Iβ_bs ≠ Qo at α={a} β={b} {v:?}");
                    assert!(qd.same_edges(&qo), "Qopt ≠ Qo at α={a} β={b} {v:?}");
                }
            }
        }
    }
}

#[test]
fn all_scs_algorithms_agree_and_verify() {
    let models = [
        WeightModel::Uniform { lo: 0.0, hi: 1.0 },
        WeightModel::Ratings { levels: 5 },
        WeightModel::AllEqual { value: 2.0 },
    ];
    for (mi, model) in models.iter().enumerate() {
        let g = weighted_random(40 + mi as u64, 22, 160, model);
        let id = DeltaIndex::build(&g);
        for a in 1..=3 {
            for b in 1..=3 {
                for v in g.vertices().step_by(9) {
                    let c = id.query_community(&g, v, a, b);
                    let rp = scs_peel(&g, &c, v, a, b);
                    if c.is_empty() {
                        assert!(rp.is_empty());
                        continue;
                    }
                    let re = scs_expand(&g, &c, v, a, b);
                    let rb = scs_binary(&g, &c, v, a, b);
                    let rbl = scs_baseline(&g, v, a, b);
                    assert!(
                        re.same_edges(&rp),
                        "expand≠peel {model:?} α={a} β={b} {v:?}"
                    );
                    assert!(
                        rb.same_edges(&rp),
                        "binary≠peel {model:?} α={a} β={b} {v:?}"
                    );
                    assert!(
                        rbl.same_edges(&rp),
                        "baseline≠peel {model:?} α={a} β={b} {v:?}"
                    );
                    verify_significant(&g, &c, v, a, b, &rp)
                        .unwrap_or_else(|e| panic!("oracle rejects peel result: {e}"));
                }
            }
        }
    }
}

#[test]
fn skewed_weights_and_rwr() {
    // The two weight models that produce many distinct, clustered values.
    let models = [
        WeightModel::SkewNormal {
            location: 0.0,
            scale: 1.0,
            shape: 5.0,
        },
        WeightModel::RandomWalk {
            restart: 0.2,
            steps_per_vertex: 80,
            scale: 10.0,
        },
    ];
    for (mi, model) in models.iter().enumerate() {
        let g = weighted_random(70 + mi as u64, 18, 120, model);
        let id = DeltaIndex::build(&g);
        for (a, b) in [(2usize, 2usize), (2, 3), (3, 2)] {
            for v in g.vertices().step_by(11) {
                let c = id.query_community(&g, v, a, b);
                if c.is_empty() {
                    continue;
                }
                let rp = scs_peel(&g, &c, v, a, b);
                let re = scs_expand(&g, &c, v, a, b);
                assert!(re.same_edges(&rp));
                verify_significant(&g, &c, v, a, b, &re).expect("oracle accepts");
            }
        }
    }
}

#[test]
fn asymmetric_parameters() {
    // Exercise β < α (the Iβ_δ half of the index) and extreme asymmetry.
    let g = weighted_random(123, 30, 260, &WeightModel::Uniform { lo: 1.0, hi: 2.0 });
    let id = DeltaIndex::build(&g);
    for (a, b) in [(1usize, 6usize), (6, 1), (2, 5), (5, 2), (1, 1)] {
        for v in g.vertices().step_by(13) {
            let c = id.query_community(&g, v, a, b);
            let online = abcore_community(&g, v, a, b);
            assert!(c.same_edges(&online), "α={a} β={b}");
            if c.is_empty() {
                continue;
            }
            let rp = scs_peel(&g, &c, v, a, b);
            verify_significant(&g, &c, v, a, b, &rp).expect("oracle accepts");
        }
    }
}

#[test]
fn dense_graph_stress() {
    // Near-complete graph: large δ relative to size, deep peeling.
    let g = weighted_random(321, 12, 130, &WeightModel::Ratings { levels: 3 });
    let id = DeltaIndex::build(&g);
    let delta = id.delta();
    assert!(delta >= 4, "expected a dense core, got δ={delta}");
    for a in (1..=delta).step_by(2) {
        for b in (1..=delta).step_by(2) {
            for v in g.vertices().step_by(5) {
                let c = id.query_community(&g, v, a, b);
                if c.is_empty() {
                    continue;
                }
                let rp = scs_peel(&g, &c, v, a, b);
                let re = scs_expand(&g, &c, v, a, b);
                assert!(re.same_edges(&rp));
            }
        }
    }
}
