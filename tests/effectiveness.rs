//! Statistical effectiveness tests: across seeds, the significant
//! (α,β)-community model recovers planted structure better than the
//! purely structural and purely weight-based alternatives — the claim
//! behind the paper's Fig. 6 / Table II, tested as invariants instead of
//! one-off numbers.

use bigraph::generators::{planted_communities, PlantedConfig};
use bigraph::metrics::dislike_fraction;
use bigraph::projection::{project, ProjectionWeight};
use bigraph::weights::WeightModel;
use bigraph::Side;
use datasets::{generate_movielens, MovieLensConfig, UserKind};
use scs::{Algorithm, CommunitySearch};

#[test]
fn sc_excludes_grumps_across_seeds() {
    for seed in [1u64, 7, 23] {
        let ml = generate_movielens(&MovieLensConfig {
            n_genres: 2,
            movies_per_genre: 30,
            fans_per_genre: 40,
            grumps_per_genre: 12,
            n_casuals: 60,
            ratings_per_fan: 18,
            ratings_per_casual: 4,
            seed,
        });
        let (g, user_map, _) = ml.extract_genre(0);
        let search = CommunitySearch::new(g);
        let delta = search.delta();
        let t = ((delta as f64 * 0.7).round() as usize).max(2);
        let q_ui = user_map
            .iter()
            .position(|&o| o == ml.graph.local_index(ml.some_fan(0)))
            .unwrap();
        let q = search.graph().upper(q_ui);

        let core = search.community(q, t, t);
        let sc = search.significant_community(q, t, t, Algorithm::Auto);
        assert!(!sc.is_empty(), "seed {seed}");

        // Count planted grumps inside each community.
        let count_grumps = |sub: &bigraph::Subgraph<'_>| {
            sub.layer_vertices()
                .0
                .iter()
                .filter(|&&u| {
                    let orig = user_map[search.graph().local_index(u)];
                    matches!(ml.user_kind[orig], UserKind::Grump(_))
                })
                .count()
        };
        let grumps_core = count_grumps(&core);
        let grumps_sc = count_grumps(&sc);
        assert!(
            grumps_sc < grumps_core || grumps_core == 0,
            "seed {seed}: SC keeps {grumps_sc} grumps, core has {grumps_core}"
        );
        assert_eq!(grumps_sc, 0, "seed {seed}: SC must exclude every grump");

        // Fans dominate SC.
        let fans_sc = sc
            .layer_vertices()
            .0
            .iter()
            .filter(|&&u| {
                let orig = user_map[search.graph().local_index(u)];
                matches!(ml.user_kind[orig], UserKind::Fan(_))
            })
            .count();
        assert!(
            fans_sc * 10 >= sc.layer_vertices().0.len() * 9,
            "seed {seed}"
        );

        // Dislike metric strictly better (or equal when core is clean).
        let d_sc = dislike_fraction(&sc, 4.0, 0.6 * t as f64);
        let d_core = dislike_fraction(&core, 4.0, 0.6 * t as f64);
        assert!(d_sc <= d_core, "seed {seed}: {d_sc} vs {d_core}");
    }
}

#[test]
fn sc_recovers_planted_heavy_block() {
    // Planted dense blocks with distinct weight levels: block 0 gets
    // heavy weights, the rest light. SC from a block-0 vertex recovers
    // block 0 only.
    for seed in [3u64, 11] {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = PlantedConfig {
            n_blocks: 3,
            block_upper: 12,
            block_lower: 10,
            p_in: 0.75,
            noise_upper: 20,
            noise_lower: 20,
            p_out: 0.02,
        };
        let pg = planted_communities(&cfg, &mut rng);
        let weighted = pg.graph.reweighted(|_, (u, l), _| {
            let heavy = pg.block_of(u) == Some(0) && pg.block_of(l) == Some(0);
            if heavy {
                10.0
            } else {
                1.0
            }
        });
        let search = CommunitySearch::new(weighted);
        // Pick a block-0 vertex that actually sits in the (4,4)-core
        // (random generation can leave individual vertices underweight).
        let q = (0..cfg.block_upper)
            .map(|i| search.graph().upper(i))
            .find(|&v| !search.community(v, 4, 4).is_empty())
            .unwrap_or_else(|| panic!("seed {seed}: no block-0 vertex in the (4,4)-core"));
        let r = search.significant_community(q, 4, 4, Algorithm::Auto);
        assert!(!r.is_empty(), "seed {seed}");
        assert_eq!(r.min_weight(), Some(10.0), "seed {seed}");
        for v in r.vertices() {
            assert_eq!(
                pg.block_of(v),
                Some(0),
                "seed {seed}: SC leaked outside block 0"
            );
        }
    }
}

#[test]
fn weight_model_invariance_of_structure() {
    // Reweighting must not change step-1 communities (they are
    // structural), only step-2 results.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let g0 = bigraph::generators::random_bipartite(30, 30, 220, &mut rng);
    let g1 = WeightModel::Uniform { lo: 0.0, hi: 1.0 }.apply(&g0, &mut rng);
    let g2 = WeightModel::Ratings { levels: 5 }.apply(&g0, &mut rng);
    let s1 = CommunitySearch::new(g1);
    let s2 = CommunitySearch::new(g2);
    assert_eq!(s1.delta(), s2.delta());
    for a in 1..=3 {
        for b in 1..=3 {
            for vi in (0..30).step_by(7) {
                let c1 = s1.community(s1.graph().upper(vi), a, b);
                let c2 = s2.community(s2.graph().upper(vi), a, b);
                assert_eq!(c1.edges(), c2.edges());
            }
        }
    }
}

#[test]
fn projection_explodes_on_movielens() {
    // The §VI argument for working natively on the bipartite graph: the
    // one-mode projection of the genre subgraph has far more edges.
    let ml = generate_movielens(&MovieLensConfig {
        n_genres: 1,
        movies_per_genre: 30,
        fans_per_genre: 60,
        grumps_per_genre: 15,
        n_casuals: 40,
        ratings_per_fan: 15,
        ratings_per_casual: 4,
        seed: 2,
    });
    let (g, _, _) = ml.extract_genre(0);
    let p = project(&g, Side::Upper, ProjectionWeight::CommonNeighbors);
    assert!(
        p.explosion_factor(&g) > 2.0,
        "projection should blow up the edge count (factor {})",
        p.explosion_factor(&g)
    );
}
