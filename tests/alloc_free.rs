//! The tentpole guarantee, enforced: with a warm [`QueryWorkspace`] and
//! a warm output buffer, a repeated query performs **zero** heap
//! allocations — for every second-step algorithm.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the workspace with two runs of each query (first run grows the
//! buffers, second confirms capacities converged), then asserts the
//! third run's allocation delta is exactly zero. This is the
//! steady-state compute path of the service workers.
//!
//! Runs as its own integration-test binary **without the libtest
//! harness** (`harness = false` in Cargo.toml): the harness's
//! main-thread bookkeeping (slow-test watchdog, channel waits)
//! allocates sporadically and would race the measured windows. Here the
//! process has exactly one thread, so the counter is exact.

use bigraph::arena::ResultArena;
use bigraph::builder::figure2_example;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump;
// every contract obligation is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our `alloc`, which delegated
        // to `System` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller contract identical to `System`'s, to which we delegate.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged from our own caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    let q = search.graph().upper(2); // u3: nonempty, non-trivial answer
    let mut ws = QueryWorkspace::new();
    let mut out = Vec::new();

    for algo in Algorithm::ALL {
        // Two warm-up runs: the first grows every buffer, the second
        // proves the capacities converged.
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        assert!(!out.is_empty(), "warm-up must produce a real community");

        let before = allocations();
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "algorithm {algo} allocated {delta} times on a warm workspace"
        );
    }

    // Varying the parameters (still within warmed capacity) stays free
    // too: the buffers are sized by the graph, not by one specific query.
    for (a, b) in [(1, 1), (3, 3), (2, 3)] {
        search.significant_community_into(q, a, b, Algorithm::Peel, &mut ws, &mut out);
        let before = allocations();
        search.significant_community_into(q, a, b, Algorithm::Peel, &mut ws, &mut out);
        assert_eq!(allocations() - before, 0, "α={a} β={b}");
    }

    // The arena entry points extend the guarantee to the *result*: a
    // warm arena stores repeated answers with zero allocations too.
    let mut arena = ResultArena::new();
    for algo in Algorithm::ALL {
        search.significant_community_arena(q, 2, 2, algo, &mut ws, &mut arena); // warm slab
        let before = allocations();
        let stored = search.significant_community_arena(q, 2, 2, algo, &mut ws, &mut arena);
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "algorithm {algo} allocated {delta} storing to a warm arena"
        );
        assert!(!stored.as_slice().is_empty());
        assert!(stored.pinned());
    }

    // Slab recycling is allocation-free as well: with a deliberately
    // tiny slab and handles dropped per query, the arena turns one slab
    // over again and again without ever going back to the allocator.
    let mut small = ResultArena::with_slab_capacity(8);
    search.significant_community_arena(q, 2, 2, Algorithm::Peel, &mut ws, &mut small); // allocates the slab
    let before = allocations();
    for _ in 0..32 {
        let stored =
            search.significant_community_arena(q, 2, 2, Algorithm::Peel, &mut ws, &mut small);
        assert!(stored.pinned());
    }
    assert_eq!(
        allocations() - before,
        0,
        "slab recycling must not allocate (recycles: {})",
        small.stats().recycled
    );
    assert!(small.stats().recycled > 0, "tiny slab must have recycled");

    println!("alloc_free: warm kernels, arena stores and slab recycling allocated 0 times — ok");
}
