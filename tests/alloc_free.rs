//! The tentpole guarantee, enforced: with a warm [`QueryWorkspace`] and
//! a warm output buffer, a repeated query performs **zero** heap
//! allocations — for every second-step algorithm.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the workspace with two runs of each query (first run grows the
//! buffers, second confirms capacities converged), then asserts the
//! third run's allocation delta is exactly zero. This is the
//! steady-state compute path of the service workers.
//!
//! Kept as a single `#[test]` in its own integration-test binary so no
//! concurrent test thread can perturb the allocation counter.

use bigraph::builder::figure2_example;
use scs::{Algorithm, CommunitySearch, QueryWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_workspace_queries_do_not_allocate() {
    let g = figure2_example();
    let search = CommunitySearch::new(g);
    let q = search.graph().upper(2); // u3: nonempty, non-trivial answer
    let mut ws = QueryWorkspace::new();
    let mut out = Vec::new();

    for algo in Algorithm::ALL {
        // Two warm-up runs: the first grows every buffer, the second
        // proves the capacities converged.
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        assert!(!out.is_empty(), "warm-up must produce a real community");

        let before = allocations();
        search.significant_community_into(q, 2, 2, algo, &mut ws, &mut out);
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "algorithm {algo} allocated {delta} times on a warm workspace"
        );
    }

    // Varying the parameters (still within warmed capacity) stays free
    // too: the buffers are sized by the graph, not by one specific query.
    for (a, b) in [(1, 1), (3, 3), (2, 3)] {
        search.significant_community_into(q, a, b, Algorithm::Peel, &mut ws, &mut out);
        let before = allocations();
        search.significant_community_into(q, a, b, Algorithm::Peel, &mut ws, &mut out);
        assert_eq!(allocations() - before, 0, "α={a} β={b}");
    }
}
