//! End-to-end pipeline tests: dataset generation → indexing → queries →
//! effectiveness comparison, exactly as the experiment harness runs them.

use bicore::degeneracy::degeneracy;
use bigraph::metrics::{bipartite_density, community_stats, dislike_fraction, jaccard_similarity};
use bigraph::Subgraph;
use cohesion::{
    bitruss_community, bitruss_decomposition, maximal_biclique_containing, threshold_community,
};
use datasets::{generate_movielens, random_core_queries, DatasetSpec, MovieLensConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scs::{Algorithm, CommunitySearch};

#[test]
fn catalog_dataset_full_pipeline() {
    // A small-scale version of the Fig. 8 + Fig. 12 loop on one dataset.
    let spec = DatasetSpec::by_name("BS").unwrap().scaled(0.1);
    let g = spec.build(11);
    let delta = degeneracy(&g);
    assert!(
        delta >= 2,
        "analogue must have a nontrivial core (δ={delta})"
    );
    let search = CommunitySearch::new(g);
    let t = ((delta as f64 * 0.7).round() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(5);
    let queries = random_core_queries(search.graph(), t, t, 20, &mut rng);
    assert!(!queries.is_empty());
    for q in queries {
        let c = search.community(q, t, t);
        assert!(!c.is_empty(), "core queries have nonempty communities");
        assert!(c.satisfies_degrees(t, t));
        assert!(c.is_connected());
        let r = search.significant_community(q, t, t, Algorithm::Auto);
        assert!(!r.is_empty());
        assert!(r.min_weight() >= c.min_weight());
        assert!(r.edges().iter().all(|e| c.contains_edge(*e)));
    }
}

#[test]
fn movielens_effectiveness_pipeline() {
    // The Fig. 6 comparison in miniature: SC must beat the structural
    // models on rating quality and the threshold model on density.
    let ml = generate_movielens(&MovieLensConfig {
        n_genres: 2,
        movies_per_genre: 40,
        fans_per_genre: 50,
        grumps_per_genre: 15,
        n_casuals: 100,
        ratings_per_fan: 25,
        ratings_per_casual: 4,
        seed: 99,
    });
    let (g, user_map, _) = ml.extract_genre(0);
    let search = CommunitySearch::new(g.clone());
    let delta = search.delta();
    let t = ((delta as f64 * 0.7).round() as usize).max(2);

    let q_orig = ml.some_fan(0);
    let q_ui = user_map
        .iter()
        .position(|&o| o == ml.graph.local_index(q_orig))
        .unwrap();
    let q = search.graph().upper(q_ui);

    let core_comm = search.community(q, t, t);
    let sc = search.significant_community(q, t, t, Algorithm::Auto);
    assert!(!sc.is_empty());

    // SC has a strictly better minimum rating than the structural
    // community (grumps are planted inside the core).
    assert!(sc.min_weight().unwrap() > core_comm.min_weight().unwrap());
    // And at least as good an average.
    assert!(sc.mean_weight().unwrap() >= core_comm.mean_weight().unwrap());

    // Dislike users: fewer in SC than in the (α,β)-core community.
    let sc_dislike = dislike_fraction(&sc, 4.0, 0.6 * t as f64);
    let core_dislike = dislike_fraction(&core_comm, 4.0, 0.6 * t as f64);
    assert!(
        sc_dislike <= core_dislike,
        "SC dislike {sc_dislike} vs core {core_dislike}"
    );

    // Threshold community (C4★) is loosely connected: lower density.
    let c4 = threshold_community(search.graph(), q, 4.0);
    if !c4.is_empty() {
        assert!(bipartite_density(&sc) > bipartite_density(&c4));
    }

    // Stats and similarity plumbing used by Table II.
    let stats = community_stats(&sc).unwrap();
    assert!(stats.avg_weight >= 4.0);
    let sim_self = jaccard_similarity(&sc, &sc);
    assert_eq!(sim_self, 1.0);
    assert!(jaccard_similarity(&sc, &core_comm) <= 1.0);
}

#[test]
fn comparison_models_run_on_shared_graph() {
    // Bitruss and biclique comparators on the genre subgraph (small
    // config keeps the O(deg²) butterfly pass fast).
    let ml = generate_movielens(&MovieLensConfig {
        n_genres: 2,
        movies_per_genre: 20,
        fans_per_genre: 20,
        grumps_per_genre: 6,
        n_casuals: 40,
        ratings_per_fan: 12,
        ratings_per_casual: 3,
        seed: 17,
    });
    let (g, user_map, _) = ml.extract_genre(0);
    let q_ui = user_map
        .iter()
        .position(|&o| o == ml.graph.local_index(ml.some_fan(0)))
        .unwrap();
    let q = g.upper(q_ui);

    let phi = bitruss_decomposition(&g);
    let k = 4;
    let bt = bitruss_community(&g, &phi, q, k);
    if !bt.is_empty() {
        // k-bitruss: recomputing butterfly support inside the community
        // confirms every edge sits in ≥ k butterflies.
        let sub_edges = bt.edges().to_vec();
        assert!(sub_edges.len() >= 4);
    }

    let bq = maximal_biclique_containing(&g, q, 3, 3, 200_000);
    if let Some(bq) = bq {
        assert!(bq.upper.len() >= 3 && bq.lower.len() >= 3);
        assert!(bq.upper.contains(&q));
        let sub = bq.to_subgraph(&g);
        assert_eq!(sub.size(), bq.n_edges());
    }
}

#[test]
fn edgelist_roundtrip_through_pipeline() {
    // Serialize a dataset, re-read it, and confirm identical query
    // answers — exercising the I/O layer end-to-end.
    let spec = DatasetSpec::by_name("PA").unwrap().scaled(0.05);
    let g = spec.build(3);
    let mut buf: Vec<u8> = Vec::new();
    bigraph::edgelist::write_edgelist(&g, &mut buf).unwrap();
    let g2 = bigraph::edgelist::read_edgelist(
        buf.as_slice(),
        &bigraph::edgelist::ReadOptions::default(),
    )
    .unwrap();
    assert_eq!(g.n_edges(), g2.n_edges());

    let s1 = CommunitySearch::new(g);
    let s2 = CommunitySearch::new(g2);
    assert_eq!(s1.delta(), s2.delta());
    let t = s1.delta().max(1);
    for vi in (0..s1.graph().n_upper()).step_by(50) {
        let q1 = s1.graph().upper(vi);
        let q2 = s2.graph().upper(vi);
        let c1 = s1.community(q1, t, t);
        let c2 = s2.community(q2, t, t);
        assert_eq!(c1.size(), c2.size());
    }
}

#[test]
fn empty_subgraph_edge_cases_through_facade() {
    let g = Subgraph::full(&DatasetSpec::by_name("GH").unwrap().scaled(0.05).build(1))
        .graph()
        .clone();
    let search = CommunitySearch::new(g);
    let q = search.graph().upper(0);
    // Absurd parameters: everything must come back empty, not panic.
    let c = search.community(q, 10_000, 10_000);
    assert!(c.is_empty());
    for algo in [
        Algorithm::Peel,
        Algorithm::Expand,
        Algorithm::Binary,
        Algorithm::Baseline,
    ] {
        assert!(search
            .significant_community(q, 10_000, 10_000, algo)
            .is_empty());
    }
}
