//! Randomized property tests for the core invariants the paper's
//! correctness arguments rest on.
//!
//! These used to be `proptest` strategies; the offline build has no
//! registry access, so they now run as seeded loops over the same random
//! graph distribution (`CASES` graphs per property, deterministic per
//! seed). Shrinking is lost, but the failure message always includes the
//! case seed, which reproduces the graph exactly.

use bicore::abcore::abcore;
use bicore::decompose::{alpha_offsets, beta_offsets};
use bicore::degeneracy::degeneracy;
use bigraph::builder::{DuplicatePolicy, GraphBuilder};
use bigraph::{BipartiteGraph, Subgraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scs::query::oracle::verify_significant;
use scs::query::{scs_binary, scs_expand, scs_peel};
use scs::{DeltaIndex, DynamicIndex};

/// Cases per property (matches the old `ProptestConfig::with_cases(48)`).
const CASES: u64 = 48;

/// A random weighted bipartite graph with `nu × nl` vertices and up to
/// `max_m` edges (duplicates collapsed by max) — the old `arb_graph`
/// strategy.
fn arb_graph(nu: usize, nl: usize, max_m: usize, rng: &mut StdRng) -> BipartiteGraph {
    let m = rng.gen_range(1..=max_m);
    let mut b = GraphBuilder::with_policy(DuplicatePolicy::KeepMax);
    b.ensure_upper(nu - 1);
    b.ensure_lower(nl - 1);
    for _ in 0..m {
        let u = rng.gen_range(0..nu);
        let l = rng.gen_range(0..nl);
        let w = rng.gen_range(1..=50u32);
        b.add_edge(u, l, w as f64);
    }
    b.build().expect("keep-max dedup cannot fail")
}

/// Runs `check` on `CASES` random graphs. A failing case's panic is
/// caught and re-raised with the case seed prepended, so the graph that
/// broke the property can be regenerated exactly:
/// `StdRng::seed_from_u64(seed)` + the same `arb_graph` dimensions.
fn for_random_graphs(
    nu: usize,
    nl: usize,
    max_m: usize,
    check: impl Fn(&BipartiteGraph, &mut StdRng),
) {
    for case in 0..CASES {
        let seed = 0xC0FFEE ^ case;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = arb_graph(nu, nl, max_m, &mut rng);
            check(&g, &mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "property failed on case {case} \
                 (seed {seed:#x}, arb_graph({nu}, {nl}, {max_m})): {msg}"
            );
        }
    }
}

/// Core hierarchy (Lemma 2): (α,β)-core ⊆ (α′,β′)-core when α ≥ α′,
/// β ≥ β′.
#[test]
fn core_hierarchy() {
    for_random_graphs(12, 12, 60, |g, _| {
        for a in 1..=3usize {
            for b in 1..=3usize {
                let big = abcore(g, a, b);
                let small = abcore(g, a + 1, b + 1);
                for v in g.vertices() {
                    assert!(!small.contains(v) || big.contains(v));
                }
            }
        }
    });
}

/// Offset consistency: s_a(v,α) ≥ β ⇔ v ∈ (α,β)-core, and symmetrically
/// for β-offsets.
#[test]
fn offset_consistency() {
    for_random_graphs(10, 10, 50, |g, _| {
        for a in 1..=4usize {
            let off = alpha_offsets(g, a);
            for b in 1..=4usize {
                let core = abcore(g, a, b);
                for v in g.vertices() {
                    assert_eq!(off[v.index()] as usize >= b, core.contains(v));
                }
            }
        }
        for b in 1..=4usize {
            let off = beta_offsets(g, b);
            for a in 1..=4usize {
                let core = abcore(g, a, b);
                for v in g.vertices() {
                    assert_eq!(off[v.index()] as usize >= a, core.contains(v));
                }
            }
        }
    });
}

/// Degeneracy bound: δ² ≤ m, the (δ,δ)-core is nonempty and the
/// (δ+1,δ+1)-core is empty.
#[test]
fn degeneracy_bound() {
    for_random_graphs(14, 14, 80, |g, _| {
        let d = degeneracy(g);
        assert!(d * d <= g.n_edges());
        if d > 0 {
            assert!(!abcore(g, d, d).is_empty());
        }
        assert!(abcore(g, d + 1, d + 1).is_empty());
    });
}

/// Qopt answers match the online computation for every vertex and a grid
/// of parameters (Lemma 3 correctness side).
#[test]
fn index_query_equivalence() {
    for_random_graphs(10, 10, 55, |g, _| {
        let idx = DeltaIndex::build(g);
        for a in 1..=3usize {
            for b in 1..=3usize {
                for v in g.vertices() {
                    let online = bicore::abcore::abcore_community(g, v, a, b);
                    let fast = idx.query_community(g, v, a, b);
                    assert!(fast.same_edges(&online));
                }
            }
        }
    });
}

/// The three SCS algorithms agree and satisfy Definition 5 (checked by
/// the independent oracle).
#[test]
fn scs_algorithms_agree() {
    for_random_graphs(9, 9, 45, |g, _| {
        let idx = DeltaIndex::build(g);
        for (a, b) in [(1usize, 1usize), (2, 2), (1, 2), (2, 1)] {
            for v in g.vertices().step_by(3) {
                let c = idx.query_community(g, v, a, b);
                let rp = scs_peel(g, &c, v, a, b);
                let re = scs_expand(g, &c, v, a, b);
                let rb = scs_binary(g, &c, v, a, b);
                assert!(re.same_edges(&rp));
                assert!(rb.same_edges(&rp));
                if let Err(e) = verify_significant(g, &c, v, a, b, &rp) {
                    panic!("oracle rejected: {e}");
                }
            }
        }
    });
}

/// Result monotonicity: tighter (α,β) ⇒ the community shrinks.
#[test]
fn community_monotone_in_parameters() {
    for_random_graphs(10, 10, 60, |g, _| {
        let idx = DeltaIndex::build(g);
        for v in g.vertices().step_by(4) {
            let loose = idx.query_community(g, v, 1, 1);
            let tight = idx.query_community(g, v, 2, 2);
            for e in tight.edges() {
                assert!(loose.contains_edge(*e));
            }
        }
    });
}

/// Index maintenance: after a random insertion, the dynamic index
/// answers exactly like a fresh rebuild.
#[test]
fn maintenance_insert_equivalence() {
    for_random_graphs(8, 8, 35, |g, rng| {
        let u = rng.gen_range(0..8usize);
        let l = rng.gen_range(0..8usize);
        let w = rng.gen_range(1..=50u32);
        let mut dynidx = DynamicIndex::new(g.clone());
        let exists = {
            let gr = dynidx.graph();
            u < gr.n_upper() && l < gr.n_lower() && gr.has_edge(gr.upper(u), gr.lower(l))
        };
        if exists {
            assert!(dynidx.insert_edge(u, l, w as f64).is_err());
            return;
        }
        dynidx.insert_edge(u, l, w as f64).unwrap();
        let fresh = DeltaIndex::build(dynidx.graph());
        assert_eq!(dynidx.index().delta(), fresh.delta());
        for a in 1..=3usize {
            for b in 1..=3usize {
                for v in dynidx.graph().vertices() {
                    let m = dynidx.query_community(v, a, b);
                    let f = fresh.query_community(dynidx.graph(), v, a, b);
                    assert!(m.same_edges(&f));
                }
            }
        }
    });
}

/// Index maintenance under removal, same equivalence.
#[test]
fn maintenance_remove_equivalence() {
    for_random_graphs(8, 8, 40, |g, rng| {
        if g.n_edges() == 0 {
            return;
        }
        let pick = rng.gen_range(0..1000usize);
        let e = bigraph::EdgeId((pick % g.n_edges()) as u32);
        let (u, l) = g.endpoints(e);
        let (ui, li) = (g.local_index(u), g.local_index(l));
        let mut dynidx = DynamicIndex::new(g.clone());
        dynidx.remove_edge(ui, li).unwrap();
        let fresh = DeltaIndex::build(dynidx.graph());
        assert_eq!(dynidx.index().delta(), fresh.delta());
        for a in 1..=3usize {
            for b in 1..=3usize {
                for v in dynidx.graph().vertices() {
                    let m = dynidx.query_community(v, a, b);
                    let f = fresh.query_community(dynidx.graph(), v, a, b);
                    assert!(m.same_edges(&f));
                }
            }
        }
    });
}

/// Peeling to a core is a fixpoint and yields a degree-feasible subgraph.
#[test]
fn peel_fixpoint() {
    for_random_graphs(12, 12, 70, |g, rng| {
        let a = rng.gen_range(1..4usize);
        let b = rng.gen_range(1..4usize);
        let core = Subgraph::full(g).peel_to_core(a, b);
        assert!(core.same_edges(&core.peel_to_core(a, b)));
        if !core.is_empty() {
            assert!(core.satisfies_degrees(a, b));
        }
    });
}

/// Edge-list serialization round-trips every edge exactly. Isolated
/// vertices are not serialized, so the comparison goes through side-local
/// indices (the id space may compact).
#[test]
fn edgelist_roundtrip() {
    for_random_graphs(10, 10, 60, |g, _| {
        let mut buf = Vec::new();
        bigraph::edgelist::write_edgelist(g, &mut buf).unwrap();
        let g2 = bigraph::edgelist::read_edgelist(
            buf.as_slice(),
            &bigraph::edgelist::ReadOptions::default(),
        )
        .unwrap();
        assert_eq!(g.n_edges(), g2.n_edges());
        for e in g.edge_ids() {
            let (u, l) = g.endpoints(e);
            let u2 = g2.upper(g.local_index(u));
            let l2 = g2.lower(g.local_index(l));
            let e2 = g2.find_edge(u2, l2).expect("edge survives");
            assert_eq!(g.weight(e), g2.weight(e2));
        }
    });
}

/// Index persistence round-trips and answers identically.
#[test]
fn index_persist_roundtrip() {
    for_random_graphs(9, 9, 45, |g, _| {
        let idx = DeltaIndex::build(g);
        let mut buf = Vec::new();
        scs::index::save_index(g, &idx, &mut buf).unwrap();
        let loaded = scs::index::load_index(g, buf.as_slice()).unwrap();
        assert_eq!(loaded.delta(), idx.delta());
        for (a, b) in [(1usize, 1usize), (2, 2), (1, 3), (3, 1)] {
            for v in g.vertices().step_by(5) {
                assert!(loaded
                    .query_community(g, v, a, b)
                    .same_edges(&idx.query_community(g, v, a, b)));
            }
        }
    });
}

/// Projection edge count equals the number of same-side pairs with a
/// common neighbor, and total wedge count is conserved.
#[test]
fn projection_wedge_conservation() {
    use bigraph::projection::{project, ProjectionWeight};
    use bigraph::Side;
    for_random_graphs(8, 8, 40, |g, _| {
        let pu = project(g, Side::Upper, ProjectionWeight::CommonNeighbors);
        let pl = project(g, Side::Lower, ProjectionWeight::CommonNeighbors);
        // Σ weights over the upper projection counts wedges centered on
        // lower vertices and vice versa; both equal Σ_v C(deg(v), 2).
        let wedges = |side_upper: bool| -> f64 {
            g.vertices()
                .filter(|&v| g.is_upper(v) == side_upper)
                .map(|v| {
                    let d = g.degree(v) as f64;
                    d * (d - 1.0) / 2.0
                })
                .sum()
        };
        let sum_u: f64 = pu.edges.iter().map(|e| e.2).sum();
        let sum_l: f64 = pl.edges.iter().map(|e| e.2).sum();
        assert!((sum_u - wedges(false)).abs() < 1e-9);
        assert!((sum_l - wedges(true)).abs() < 1e-9);
    });
}

/// Butterfly support ignores weights and the total count formula holds.
#[test]
fn butterfly_total_formula() {
    for_random_graphs(8, 8, 40, |g, _| {
        let s = cohesion::butterfly_support(g);
        let total = cohesion::butterfly_count_total(g);
        assert_eq!(s.iter().sum::<u64>(), 4 * total);
        let reweighted = g.reweighted(|_, _, w| w * 2.0);
        assert_eq!(cohesion::butterfly_support(&reweighted), s);
    });
}
