//! # scs-repro — workspace umbrella crate
//!
//! This crate exists to anchor the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`), which exercise the
//! whole stack across crate boundaries. It re-exports the member crates
//! so `cargo doc` renders one entry point:
//!
//! | crate | contents |
//! |---|---|
//! | [`bigraph`] | weighted bipartite CSR graphs, builders, generators |
//! | [`bicore`] | (α,β)-core peeling, offsets, degeneracy, `Iv` baseline |
//! | [`scs`] | the `Iδ` index and the significant-community queries |
//! | [`cohesion`] | comparison models (butterfly, bitruss, biclique) |
//! | [`datasets`] | Table-I synthetic analogues and query workloads |
//! | [`scs_service`] | concurrent query-serving engine (`scs serve-bench`) |

// No unsafe in this crate — and none may creep in.
#![forbid(unsafe_code)]

pub use bicore;
pub use bigraph;
pub use cohesion;
pub use datasets;
pub use scs;
pub use scs_service;
